#!/usr/bin/env python3
"""§5(c): termination detection and its message lower bound.

Runs a diffusing computation under two detectors —

* **Dijkstra–Scholten**, which meets the paper's lower bound exactly
  (one acknowledgement per work message), and
* a **wave-based polling detector**, whose overhead exceeds it —

and prints the overhead-vs-underlying table of experiment E12, plus the
paper's two argument steps made concrete on real traces.

Run:  python examples/termination_detection.py
"""

from repro.applications.termination_bounds import (
    overhead_table,
    run_dijkstra_scholten,
    run_polling_detector,
    spontaneous_ds_workload,
    spontaneous_overhead_after_termination,
)
from repro.protocols.termination import generate_workload
from repro.simulation.scheduler import RandomScheduler


def main() -> None:
    # ------------------------------------------------------------------
    # One run in detail.
    # ------------------------------------------------------------------
    workload = generate_workload(
        ("a", "b", "c", "d"), seed=7, activations_per_process=3
    )
    print(f"Workload: {workload.total_work_messages()} underlying work messages")
    ds_run, ds_trace = run_dijkstra_scholten(workload, RandomScheduler(7))
    print(
        f"  Dijkstra-Scholten: detected={ds_run.detected}, "
        f"overhead={ds_run.overhead_messages} "
        f"(= underlying: {ds_run.overhead_messages == ds_run.underlying_messages})"
    )
    polling_run, _ = run_polling_detector(workload, RandomScheduler(7))
    print(
        f"  Polling detector:  detected={polling_run.detected}, "
        f"overhead={polling_run.overhead_messages}"
    )
    print()

    # ------------------------------------------------------------------
    # The paper's step 1: overhead after termination, sent spontaneously.
    # ------------------------------------------------------------------
    scenario = spontaneous_ds_workload()
    run, trace = run_dijkstra_scholten(scenario, RandomScheduler(0))
    spontaneous = spontaneous_overhead_after_termination(
        trace, run.termination_index
    )
    print(
        "Step-1 scenario (root sends one message and idles): termination at "
        f"event {run.termination_index}, detection at {run.detection_index}; "
        f"{spontaneous} overhead message(s) sent after termination without a "
        "prior receive."
    )
    print()

    # ------------------------------------------------------------------
    # The E12 table.
    # ------------------------------------------------------------------
    print("Overhead vs underlying messages (experiment E12):")
    print(f"{'procs':>5} {'seed':>4} {'underlying':>10} {'DS':>6} {'polling':>8} {'DS>=M':>6}")
    for row in overhead_table(process_counts=(3, 4, 5, 6), seeds=(0, 1, 2)):
        print(
            f"{row.processes:>5} {row.seed:>4} {row.underlying:>10} "
            f"{row.ds_overhead:>6} {row.polling_overhead:>8} "
            f"{str(row.ds_meets_bound):>6}"
        )
    print()
    print(
        "Shape reproduced: DS overhead equals the underlying message count\n"
        "(the bound is met), and no detector goes below it — there is no\n"
        "algorithm with a bounded number of overhead messages."
    )


if __name__ == "__main__":
    main()
