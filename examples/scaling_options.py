#!/usr/bin/env python3
"""The ExplorationOptions API: every scaling knob in one grouped bundle.

The ``Universe`` constructor grew a dozen keyword arguments across the
scaling work (limits, checkpointing, resource budgets, sharding, store
selection).  ``ExplorationOptions`` groups them into four small frozen
dataclasses, and both calling styles run through the same code path —
a universe built from legacy kwargs and one built from the equivalent
options object are bit-identical.  This example drives each group:

1. ``Limits`` — cap the universe and stream a truncated prefix;
2. ``CheckpointPolicy`` — save at layer boundaries, then resume the
   truncated run to completion from disk;
3. ``Sharding`` — explore with two forked worker shards and read back
   their peak memory from the farewell frames;
4. ``store="arena"`` + ``ResourceBudget`` — the packed configuration
   store with a spill directory.

Run:  python examples/scaling_options.py
"""

import tempfile
from pathlib import Path

from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.universe.explorer import Universe
from repro.universe.options import (
    CheckpointPolicy,
    ExplorationOptions,
    Limits,
    ResourceBudget,
    Sharding,
)


def star(n: int) -> BroadcastProtocol:
    receivers = tuple(f"p{i}" for i in range(n - 1))
    return BroadcastProtocol(star_topology("hub", receivers), "hub")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Limits: a capped, streaming exploration.
    # ------------------------------------------------------------------
    capped = Universe(
        star(5),
        options=ExplorationOptions(
            limits=Limits(max_configurations=200, on_limit="truncate")
        ),
    )
    print(
        f"Capped at 200: {len(capped)} configurations, "
        f"complete={capped.is_complete}"
    )

    # ------------------------------------------------------------------
    # 2. CheckpointPolicy: truncate, then resume from disk.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmpdir:
        path = Path(tmpdir) / "star5.ckpt"
        Universe(
            star(5),
            options=ExplorationOptions(
                limits=Limits(max_configurations=200, on_limit="truncate"),
                checkpoint=CheckpointPolicy(path=path, every=1),
            ),
        )
        resumed = Universe(
            star(5),
            options=ExplorationOptions(checkpoint=CheckpointPolicy(path=path)),
        )
        session = resumed._checkpoint_session
        print(
            f"Resumed from layer {session.resumed_from} to "
            f"{len(resumed)} configurations, complete={resumed.is_complete}"
        )

    # ------------------------------------------------------------------
    # 3. Sharding: two forked worker shards, bit-identical merge.
    # ------------------------------------------------------------------
    single = Universe(star(5))
    sharded = Universe(
        star(5), options=ExplorationOptions(sharding=Sharding(workers=2))
    )
    assert len(sharded) == len(single)
    assert sharded._succ_ids == single._succ_ids
    peaks = ", ".join(
        f"shard{shard}={mb:.0f}MiB"
        for shard, mb in sorted(sharded.worker_peak_rss_mb.items())
    )
    print(f"Sharded x2 matches single-process; worker peaks: {peaks}")

    # ------------------------------------------------------------------
    # 4. The arena store with a spill directory.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmpdir:
        arena = Universe(
            star(5),
            options=ExplorationOptions(
                store="arena", budget=ResourceBudget(spill_dir=tmpdir)
            ),
        )
        assert len(arena) == len(single)
        print(f"Arena store rebuilt the same {len(arena)} configurations")

    # Legacy kwargs still work (Universe(star(5), workers=2, ...)) and
    # resolve through the same path; a DeprecationWarning fires only if
    # the same knob is set both ways with different values.


if __name__ == "__main__":
    main()
