#!/usr/bin/env python3
"""Quickstart: how a process learns, in five minutes.

Recreates the smallest possible "learning" story — a ping-pong exchange —
and inspects it with every major tool of the library:

1. explore the complete computation space of the protocol;
2. watch ``p knows (q received the ping)`` appear exactly when the pong
   arrives (the paper's §4 definition of knowledge, model-checked);
3. see the process chain that carried the knowledge (Theorem 5);
4. draw the isomorphism diagram of the whole universe (§3).

Run:  python examples/quickstart.py
"""

from repro import IsomorphismDiagram, Knows, KnowledgeEvaluator, Universe
from repro.causality.chains import chain_in_suffix
from repro.core.configuration import EMPTY_CONFIGURATION
from repro.knowledge.predicates import has_received
from repro.protocols.pingpong import PingPongProtocol
from repro.simulation import RandomScheduler, simulate
from repro.viz import space_time_diagram


def main() -> None:
    protocol = PingPongProtocol(rounds=1)

    # ------------------------------------------------------------------
    # 1. The complete computation space.
    # ------------------------------------------------------------------
    universe = Universe(protocol)
    print(f"The one-round ping-pong system has {len(universe)} computations")
    print(f"(exploration complete: {universe.is_complete})\n")

    # ------------------------------------------------------------------
    # 2. Knowledge, by the paper's definition.
    # ------------------------------------------------------------------
    evaluator = KnowledgeEvaluator(universe)
    b = has_received("q", "ping")
    knows_b = Knows("p", b)
    print(f"When does p know that q received the ping?  ({knows_b})")
    for configuration in universe:
        fact = "b holds" if b.fn(configuration) else "b false"
        knowledge = "p KNOWS b" if evaluator.holds(knows_b, configuration) else ""
        print(f"  |events|={len(configuration)}  {fact:8}  {knowledge}")
    print()

    # ------------------------------------------------------------------
    # 3. The chain that carried the knowledge (Theorem 5).
    # ------------------------------------------------------------------
    for configuration in evaluator.extension(knows_b):
        witness = chain_in_suffix(
            configuration, EMPTY_CONFIGURATION, ["q", "p"]
        )
        print("p's knowledge required a process chain <q p>; witness:")
        assert witness is not None
        for event in witness:
            print(f"  {event}")
        break
    print()

    # ------------------------------------------------------------------
    # 4. The isomorphism diagram of the universe.
    # ------------------------------------------------------------------
    diagram = IsomorphismDiagram.of_universe(universe)
    print("Isomorphism diagram (largest label per edge):")
    print(diagram.render())
    print()

    # ------------------------------------------------------------------
    # 5. One concrete run, as a space-time diagram.
    # ------------------------------------------------------------------
    trace = simulate(PingPongProtocol(rounds=2), RandomScheduler(0))
    print("A simulated two-round run:")
    print(space_time_diagram(trace.computation))


if __name__ == "__main__":
    main()
