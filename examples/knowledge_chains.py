#!/usr/bin/env python3
"""Theorems 5 & 6 live: knowledge flows along process chains — and only
along them.

A fact is established at the root of an 8-process line and floods
outward.  We measure, on a concrete simulated run, when each process
learns the fact, and verify the paper's sequential-transfer law: the
learning front advances exactly with the process chain from the root.
Then the fusion theorem (Theorem 2) is demonstrated by splicing two
computations that agree on a prefix.

Run:  python examples/knowledge_chains.py
"""

from repro.applications.knowledge_flow import (
    broadcast_knowledge_latency,
    latency_series,
    verify_chain_gating,
)
from repro.isomorphism.fusion import fuse, fusion_side_conditions
from repro.isomorphism.relation import isomorphic
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.universe.explorer import Universe


def main() -> None:
    # ------------------------------------------------------------------
    # Knowledge latency along a line.
    # ------------------------------------------------------------------
    rows, trace = broadcast_knowledge_latency(line_length=8, seed=5)
    print("Fact flooding down an 8-process line (event index of learning):")
    for row in rows:
        bar = "#" * (row.learned_at_step or 0)
        print(f"  {row.process}  d={row.distance}  step {row.learned_at_step:>3}  {bar}")
    assert verify_chain_gating(rows, trace, root="n0")
    print("  (chain gating verified: knowledge iff chain from the root)\n")

    print("Far-end learning step vs line length (sequential transfer):")
    for length, step in latency_series((4, 8, 16, 32), seed=1):
        print(f"  n={length:>3}: step {step}")
    print()

    # ------------------------------------------------------------------
    # Fusion theorem on a small universe.
    # ------------------------------------------------------------------
    protocol = BroadcastProtocol(line_topology(("a", "b", "c")), root="a")
    universe = Universe(protocol)
    print(
        f"Fusion over the 3-line broadcast universe ({len(universe)} "
        "computations):"
    )
    fused = 0
    example = None
    for x, y in universe.sub_configuration_pairs():
        for z in universe:
            if not x.is_sub_configuration_of(z) or y == z:
                continue
            if fusion_side_conditions(x, y, z, {"a"}, universe.processes):
                continue
            w = fuse(x, y, z, {"a"}, universe.processes)
            fused += 1
            if example is None and len(y) > len(x) and len(z) > len(x):
                example = (x, y, z, w)
    print(f"  {fused} licensed fusions, all valid computations.")
    if example:
        x, y, z, w = example
        print("  One of them (w takes a's events from y, the rest from z):")
        print(f"    x = {x!r}")
        print(f"    y = {y!r}")
        print(f"    z = {z!r}")
        print(f"    w = {w!r}")
        assert isomorphic(y, w, {"a"})
        assert isomorphic(z, w, {"b", "c"})


if __name__ == "__main__":
    main()
