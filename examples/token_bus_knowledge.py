#!/usr/bin/env python3
"""The paper's §4.1 token-bus example, verified mechanically.

Five stations p, q, r, s, t pass a single token back and forth.  The
paper claims that whenever r holds the token,

    r knows ( (q knows ¬(p holds token)) and (s knows ¬(t holds token)) )

— two levels of nested knowledge, justified nonoperationally by
isomorphism.  This example explores the complete computation space,
model-checks the claim, and then *probes its boundary*: which nested
knowledge does r NOT have?

Run:  python examples/token_bus_knowledge.py
"""

from repro import Knows, KnowledgeEvaluator, Not, Universe
from repro.knowledge.formula import Implies
from repro.protocols.token_bus import (
    TokenBusProtocol,
    holds_token_atom,
    paper_example_formula,
)


def main() -> None:
    protocol = TokenBusProtocol(max_hops=4)
    universe = Universe(protocol)
    evaluator = KnowledgeEvaluator(universe)
    print(
        f"Token bus {'-'.join(protocol.stations)}, {protocol.max_hops} hops: "
        f"{len(universe)} computations\n"
    )

    # ------------------------------------------------------------------
    # The paper's claim.
    # ------------------------------------------------------------------
    formula = paper_example_formula(protocol)
    valid = evaluator.is_valid(formula)
    print(f"Paper claim:  {formula}")
    print(f"  valid in every computation: {valid}\n")
    assert valid

    # ------------------------------------------------------------------
    # Where r actually holds the token.
    # ------------------------------------------------------------------
    r_holds = holds_token_atom(protocol, "r")
    holding = evaluator.extension(r_holds)
    print(f"r holds the token in {len(holding)} computations; one of them:")
    example = min(holding, key=len)
    for process in protocol.stations:
        events = " ".join(str(event) for event in example.history(process))
        print(f"  {process}: {events or '(no events)'}")
    print()

    # ------------------------------------------------------------------
    # The boundary: what r does NOT know.
    # ------------------------------------------------------------------
    q_holds = holds_token_atom(protocol, "q")
    t_holds = holds_token_atom(protocol, "t")
    candidates = {
        "r knows ¬(q holds)": Knows("r", Not(q_holds)),
        "r knows q knows ¬(t holds)": Knows("r", Knows("q", Not(t_holds))),
        "r knows s knows ¬(p holds)": Knows("r", Knows("s", Not(p_holds_of(protocol)))),
    }
    print("When r holds the token, does r also know ...?")
    for label, candidate in candidates.items():
        always = evaluator.is_valid(Implies(r_holds, candidate))
        print(f"  {label:40} {'yes' if always else 'NO'}")
    print()
    print(
        "The paper's formula is tight: r's knowledge points *outward* from\n"
        "the token's position (q shields p, s shields t) — the symmetric\n"
        "variants crossing the token's position fail."
    )


def p_holds_of(protocol: TokenBusProtocol):
    return holds_token_atom(protocol, "p")


if __name__ == "__main__":
    main()
