#!/usr/bin/env python3
"""§5(b): failure detection is impossible without timeouts — and works
with them.

Explores two complete universes:

* an asynchronous worker/monitor pair where the worker may crash
  silently — the monitor is provably *never sure* whether the worker
  crashed (every crash computation is isomorphic, with respect to the
  monitor, to a slow-but-alive one);
* the same system under a synchrony assumption (a timer whose ticks are
  delivery-bounded): receiving a tick without the matching heartbeat is
  a sound timeout, and the monitor reaches genuine knowledge.

Run:  python examples/failure_detection.py
"""

from repro import Knows, KnowledgeEvaluator, Universe
from repro.applications.failure_detection import analyse_async, analyse_sync
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.viz import knowledge_timeline


def main() -> None:
    # ------------------------------------------------------------------
    # Asynchronous: impossibility.
    # ------------------------------------------------------------------
    async_protocol = AsyncFailureMonitorProtocol(heartbeats=2)
    async_universe = Universe(async_protocol)
    report = analyse_async(async_universe)
    print("Asynchronous system (no timeouts):")
    print(f"  computations:            {report.universe_size}")
    print(f"  ... with a crash:        {report.crash_configurations}")
    print(f"  crash local to worker:   {report.crash_local_to_worker}")
    print(f"  monitor ever sure?       {not report.monitor_never_sure}")
    print(f"  => impossibility holds:  {report.impossibility_holds}")
    print()

    # Exhibit one indistinguishable pair.
    evaluator = KnowledgeEvaluator(async_universe)
    crashed = async_protocol.crashed_atom()
    for configuration in evaluator.extension(crashed):
        for twin in async_universe.iso_class(configuration, {"m"}):
            if not crashed.fn(twin):
                print("A crash computation and a live twin the monitor")
                print("cannot tell apart (same monitor history):")
                print(f"  crashed: {configuration!r}")
                print(f"  alive:   {twin!r}")
                break
        else:
            continue
        break
    print()

    # ------------------------------------------------------------------
    # Synchronous: timeouts make it possible.
    # ------------------------------------------------------------------
    sync_protocol = SyncFailureMonitorProtocol(rounds=2)
    sync_universe = Universe(sync_protocol)
    sync_report = analyse_sync(sync_universe)
    print("Synchronous system (timer with bounded delivery):")
    print(f"  computations:            {sync_report.universe_size}")
    print(f"  detection configurations:{sync_report.detection_configurations:>5}")
    print(f"  detection sound:         {sync_report.detection_sound}")
    print(f"  => detection possible:   {sync_report.detection_possible}")
    print()

    # Show one detecting computation as a timeline.
    sync_evaluator = KnowledgeEvaluator(sync_universe)
    knows_crashed = Knows("m", sync_protocol.crashed_atom())
    detection = min(sync_evaluator.extension(knows_crashed), key=len)
    computation = detection.linearize()
    flags = {len(computation) - 1: "monitor knows the worker crashed"}
    print("A minimal detecting computation:")
    print(knowledge_timeline(computation, flags))


if __name__ == "__main__":
    main()
