"""Unit tests for the isomorphism diagram (Figure 3-1)."""

from repro.core.configuration import Configuration
from repro.isomorphism.diagram import IsomorphismDiagram
from repro.universe.builder import figure_3_1_computations, figure_3_1_universe


def figure_diagram() -> tuple[IsomorphismDiagram, dict]:
    comps = figure_3_1_computations()
    diagram = IsomorphismDiagram(
        comps.values(), {"p", "q"}, names={k: v for k, v in comps.items()}
    )
    return diagram, comps


class TestFigure31:
    def test_vertices(self):
        diagram, comps = figure_diagram()
        assert len(diagram.vertices) == 4

    def test_self_loops_carry_d(self):
        diagram, comps = figure_diagram()
        assert diagram.label(comps["x"], comps["x"]) == {"p", "q"}

    def test_permutations_joined_by_d_edge(self):
        diagram, comps = figure_diagram()
        assert diagram.label(comps["x"], comps["z"]) == {"p", "q"}

    def test_x_y_edge_is_p(self):
        diagram, comps = figure_diagram()
        assert diagram.label(comps["x"], comps["y"]) == {"p"}

    def test_z_w_edge_is_q(self):
        diagram, comps = figure_diagram()
        assert diagram.label(comps["z"], comps["w"]) == {"q"}

    def test_y_w_have_no_edge(self):
        diagram, comps = figure_diagram()
        assert diagram.label(comps["y"], comps["w"]) is None

    def test_related_reads_labels(self):
        diagram, comps = figure_diagram()
        assert diagram.related(comps["x"], comps["y"], "p")
        assert not diagram.related(comps["x"], comps["y"], "q")

    def test_indirect_path_y_to_w(self):
        """The paper's indirect relationship: y [p q] w via z (or x)."""
        diagram, comps = figure_diagram()
        assert diagram.has_labelled_path(comps["y"], ["p", "q"], comps["w"])
        assert not diagram.has_labelled_path(comps["y"], ["q"], comps["w"])

    def test_render_contains_all_edges(self):
        diagram, comps = figure_diagram()
        text = diagram.render()
        assert "x --[{p}]-- y" in text
        assert "x --[{p,q}]-- z" in text
        assert "(self loop)" in text

    def test_name_assignment(self):
        diagram, comps = figure_diagram()
        assert diagram.name_of(comps["x"]) == "x"


class TestUniverseDiagram:
    def test_of_universe(self, pingpong_universe):
        diagram = IsomorphismDiagram.of_universe(pingpong_universe)
        assert len(diagram.vertices) == len(pingpong_universe)

    def test_labels_agree_with_iso_classes(self, pingpong_universe):
        diagram = IsomorphismDiagram.of_universe(pingpong_universe)
        for x in pingpong_universe:
            for y in pingpong_universe.iso_class(x, {"p"}):
                assert diagram.related(x, y, {"p"})

    def test_configuration_vertices_collapse_permutations(self):
        comps = figure_3_1_computations()
        configs = [Configuration.from_computation(c) for c in comps.values()]
        diagram = IsomorphismDiagram(configs, {"p", "q"})
        # x and z are the same configuration: only 3 vertices remain.
        assert len(diagram.vertices) == 3

    def test_enumerated_universe_is_prefix_closed(self):
        universe = figure_3_1_universe()
        for configuration in universe:
            assert len(configuration) <= 2
        # null + four one-event cuts + three distinct [D]-classes (x == z).
        assert len(universe) == 8
