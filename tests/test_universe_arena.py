"""Arena store vs object store: randomized equivalence, packed tiers.

The arena must be indistinguishable from the plain object list behind
the ``Universe`` API: same dense ids, same CSR successor arrays, same
hash table, and — under randomized access patterns — the same
materialised configurations, projections, and mask queries.  The packed
tiers (sealed zlib chunks, disk spill, bounded LRU with chain-walk
materialisation) are exercised directly by shrinking the chunk size so
small test universes cross every tier.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.protocols.mutex import TokenRingMutexProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.snapshot import SnapshotTokenRingProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe import arena as arena_module
from repro.universe.arena import ArenaStore, compress_batch, decompress_batch
from repro.universe.builder import packed_store_of
from repro.universe.explorer import Universe


def star(receivers: tuple[str, ...]) -> BroadcastProtocol:
    return BroadcastProtocol(star_topology("hub", receivers), "hub")


EQUIVALENCE_PROTOCOLS = [
    ("star_n4", lambda: star(("x", "y", "z"))),
    ("token_bus_h4", lambda: TokenBusProtocol(max_hops=4)),
    ("pingpong_r2", lambda: PingPongProtocol(rounds=2)),
    ("mutex_h3", lambda: TokenRingMutexProtocol(max_hops=3)),
    # Slow-path coverage for the packed kernel's transient
    # materialisation: selective receives (can_receive overrides) and
    # the declarative enabling filter.
    ("async_monitor", lambda: AsyncFailureMonitorProtocol(heartbeats=2)),
    ("sync_monitor", lambda: SyncFailureMonitorProtocol(rounds=2)),
    ("snapshot_ring", lambda: SnapshotTokenRingProtocol(max_hops=3)),
]


def assert_same_universe(objects: Universe, arena: Universe) -> None:
    """The full bit-identity contract between the two stores."""
    assert len(arena) == len(objects)
    assert arena.is_complete == objects.is_complete
    assert arena._succ_offsets == objects._succ_offsets
    assert arena._succ_ids == objects._succ_ids
    assert arena._ids_by_hash == objects._ids_by_hash
    for ours, theirs in zip(arena, objects):
        assert ours == theirs
        assert ours._histories == theirs._histories


@pytest.fixture(scope="module")
def star_pair():
    """One medium universe (star n=5, 634 configurations), both stores."""
    return Universe(star(("w", "x", "y", "z"))), Universe(
        star(("w", "x", "y", "z")), store="arena"
    )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "label,factory",
        EQUIVALENCE_PROTOCOLS,
        ids=[entry[0] for entry in EQUIVALENCE_PROTOCOLS],
    )
    def test_kernel_arena_matches_object_store(self, label, factory):
        assert_same_universe(
            Universe(factory()), Universe(factory(), store="arena")
        )

    def test_sharded_arena_matches_object_store(self):
        objects = Universe(star(("w", "x", "y", "z")))
        arena = Universe(star(("w", "x", "y", "z")), store="arena", workers=2)
        assert_same_universe(objects, arena)

    def test_truncated_arena_matches_object_prefix(self):
        objects = Universe(
            star(("w", "x", "y", "z")),
            max_configurations=150,
            on_limit="truncate",
        )
        arena = Universe(
            star(("w", "x", "y", "z")),
            max_configurations=150,
            on_limit="truncate",
            store="arena",
        )
        assert_same_universe(objects, arena)

    def test_max_events_bounded_arena_matches(self):
        objects = Universe(star(("x", "y", "z")), max_events=4)
        arena = Universe(star(("x", "y", "z")), max_events=4, store="arena")
        assert_same_universe(objects, arena)

    def test_invalid_store_rejected(self):
        from repro.core.errors import UniverseError

        with pytest.raises(UniverseError):
            Universe(PingPongProtocol(rounds=1), store="parquet")


class TestRandomizedAccess:
    def test_random_indexing_matches(self, star_pair):
        objects, arena = star_pair
        reference = list(objects.configurations)
        store = arena._configurations
        rng = random.Random(7)
        for index in rng.sample(range(len(reference)), 200):
            ours = store[index]
            assert ours == reference[index]
            assert ours._histories == reference[index]._histories
        # Negative indices and slices follow list semantics.
        assert store[-1] == reference[-1]
        assert store[10:20] == reference[10:20]
        with pytest.raises(IndexError):
            store[len(reference)]

    def test_random_projections_match(self, star_pair):
        objects, arena = star_pair
        reference = list(objects.configurations)
        store = arena._configurations
        rng = random.Random(11)
        processes = sorted(objects.processes)
        for index in rng.sample(range(len(reference)), 64):
            process = rng.choice(processes)
            assert store[index].history(process) == reference[index].history(
                process
            )

    def test_random_masks_match(self, star_pair):
        objects, arena = star_pair
        rng = random.Random(13)
        for _ in range(32):
            mask = rng.getrandbits(len(objects))
            assert arena.configurations_in_mask(
                mask
            ) == objects.configurations_in_mask(mask)

    def test_partition_tables_match(self, star_pair):
        objects, arena = star_pair
        for process in sorted(objects.processes):
            ours = arena.partition_table(frozenset({process}))
            theirs = objects.partition_table(frozenset({process}))
            assert ours.num_classes == theirs.num_classes
            assert ours.class_of == theirs.class_of

    def test_config_id_round_trip(self, star_pair):
        objects, arena = star_pair
        rng = random.Random(17)
        for index in rng.sample(range(len(objects)), 64):
            assert arena.config_id(arena._configurations[index]) == index


class TestPickleAndSeeding:
    def test_store_pickle_round_trip(self, star_pair):
        _, arena = star_pair
        store = arena._configurations
        loaded = pickle.loads(pickle.dumps(store))
        assert isinstance(loaded, ArenaStore)
        assert loaded == store
        assert list(loaded) == list(store)

    def test_packed_store_of_round_trip(self, star_pair):
        objects, _ = star_pair
        reference = list(objects.configurations)[:100]
        store = packed_store_of(reference)
        assert len(store) == len(reference)
        assert store == reference
        assert pickle.loads(pickle.dumps(store)) == reference

    def test_batch_codec_round_trip(self):
        payload = {"layer": 3, "records": [(0, "a"), (1, "b")], "n": 634}
        assert decompress_batch(compress_batch(payload)) == payload


@pytest.fixture
def small_chunks(monkeypatch):
    """Shrink the arena chunk to 64 entries so small universes seal,
    compress, and spill — every tier crossed in milliseconds."""
    bits = 6
    size = 1 << bits
    monkeypatch.setattr(arena_module, "_CHUNK_BITS", bits)
    monkeypatch.setattr(arena_module, "_CHUNK_SIZE", size)
    monkeypatch.setattr(arena_module, "_CHUNK_MASK", size - 1)
    monkeypatch.setattr(arena_module, "_PARENT_BYTES", 8 * size)
    monkeypatch.setattr(arena_module, "_EVENT_BYTES", 4 * size)
    monkeypatch.setattr(arena_module, "_RAW_CHUNK_BYTES", 20 * size)


class TestPackedTiers:
    def test_sealed_chunks_stay_equivalent(self, small_chunks):
        objects = Universe(star(("w", "x", "y", "z")))
        arena = Universe(star(("w", "x", "y", "z")), store="arena")
        store = arena._configurations
        stats = store.stats()
        assert stats["sealed_chunks"] > 0
        assert 0 < stats["compressed_bytes"] < stats["raw_bytes"]
        assert_same_universe(objects, arena)
        # Random access through the cold tier chain-walks and caches.
        reference = list(objects.configurations)
        rng = random.Random(19)
        for index in rng.sample(range(len(reference)), 100):
            assert store[index] == reference[index]
        assert store.chain_walks > 0

    def test_spill_tier_round_trip(self, small_chunks, tmp_path):
        objects = Universe(star(("w", "x", "y", "z")))
        arena = Universe(
            star(("w", "x", "y", "z")), store="arena", spill_dir=tmp_path
        )
        store = arena._configurations
        stats = store.stats()
        assert stats["spilled_chunks"] > 0
        assert stats["spilled_bytes"] > 0
        spill_files = list(tmp_path.glob("arena-*.spill"))
        assert len(spill_files) == 1
        assert_same_universe(objects, arena)
        # spill_cold drops the caches; reads fault back in via mmap.
        store.spill_cold()
        reference = list(objects.configurations)
        rng = random.Random(23)
        for index in rng.sample(range(len(reference)), 50):
            assert store[index] == reference[index]
        # close() releases and removes the spill file (idempotent).
        store.close()
        store.close()
        assert not list(tmp_path.glob("arena-*.spill"))

    def test_tiny_lru_replay_matches(self, small_chunks):
        """A pathologically small LRU forces long chain-walks up the
        parent column; replay of the packed discovery records must still
        reproduce the object store exactly."""
        objects = Universe(star(("w", "x", "y", "z")))
        arena = Universe(star(("w", "x", "y", "z")), store="arena")
        records = arena._configurations.records(1, len(arena))
        tiny = ArenaStore(lru_size=4, chunk_cache_size=2)
        ids_by_hash = tiny.replay(records)
        assert ids_by_hash == objects._ids_by_hash
        tiny.retire(len(tiny))  # evict the replay window: cold reads only
        reference = list(objects.configurations)
        assert len(tiny) == len(reference)
        rng = random.Random(29)
        for index in rng.sample(range(len(reference)), 60):
            ours = tiny[index]
            assert ours == reference[index]
            assert ours._histories == reference[index]._histories
        assert len(tiny._lru) <= 4
        assert tiny.chain_walks > 0

    def test_records_skip_roots(self, small_chunks):
        arena = Universe(star(("x", "y")), store="arena")
        store = arena._configurations
        records = store.records(0, len(store))
        assert len(records) == len(store) - 1  # the root has no record
        assert all(parent >= 0 for parent, _ in records)
