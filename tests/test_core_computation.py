"""Unit tests for Computation: the paper's sequence notation (§2)."""

import pytest

from repro.core.computation import NULL, Computation, computation_of
from repro.core.errors import InvalidComputationError
from repro.core.events import internal, message_pair


def sample():
    snd, rcv = message_pair("p", "q", "m")
    a = internal("p", tag="a")
    b = internal("q", tag="b")
    return snd, rcv, a, b


class TestBasics:
    def test_null_is_empty(self):
        assert len(NULL) == 0
        assert list(NULL) == []

    def test_equality_and_hash(self):
        snd, rcv, a, b = sample()
        assert computation_of(a, b) == computation_of(a, b)
        assert hash(computation_of(a, b)) == hash(computation_of(a, b))
        assert computation_of(a, b) != computation_of(b, a)

    def test_indexing_and_slicing(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, rcv, a)
        assert z[0] == snd
        assert isinstance(z[:2], Computation)
        assert list(z[:2]) == [snd, rcv]

    def test_rejects_non_events(self):
        with pytest.raises(InvalidComputationError):
            Computation(["not-an-event"])  # type: ignore[list-item]


class TestProjection:
    def test_projection_on_single_process(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, rcv, a, b)
        assert z.projection("p") == (snd, a)
        assert z.projection("q") == (rcv, b)

    def test_projection_on_set(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, rcv, a, b)
        assert z.projection({"p", "q"}) == (snd, rcv, a, b)

    def test_projection_on_absent_process_is_empty(self):
        snd, rcv, a, b = sample()
        assert computation_of(a).projection("q") == ()

    def test_processes_property(self):
        snd, rcv, a, b = sample()
        assert computation_of(snd, rcv).processes == {"p", "q"}


class TestPrefixOrder:
    def test_prefix_detection(self):
        snd, rcv, a, b = sample()
        x = computation_of(snd)
        z = computation_of(snd, rcv, a)
        assert x.is_prefix_of(z)
        assert not z.is_prefix_of(x)
        assert x.is_proper_prefix_of(z)
        assert not z.is_proper_prefix_of(z)
        assert z.is_prefix_of(z)

    def test_prefix_requires_equal_front(self):
        snd, rcv, a, b = sample()
        assert not computation_of(a).is_prefix_of(computation_of(snd, a))

    def test_suffix_after(self):
        snd, rcv, a, b = sample()
        x = computation_of(snd)
        z = computation_of(snd, rcv, a)
        assert z.suffix_after(x) == (rcv, a)

    def test_suffix_after_requires_prefix(self):
        snd, rcv, a, b = sample()
        with pytest.raises(InvalidComputationError):
            computation_of(a).suffix_after(computation_of(b))

    def test_prefixes_enumeration(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, rcv)
        assert list(z.prefixes()) == [NULL, computation_of(snd), z]


class TestConcatenationAndDeletion:
    def test_concat(self):
        snd, rcv, a, b = sample()
        assert computation_of(snd).concat([rcv]) == computation_of(snd, rcv)

    def test_then(self):
        snd, rcv, a, b = sample()
        assert NULL.then(a, b) == computation_of(a, b)

    def test_without_event(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, a, rcv)
        assert z.without_event(a) == computation_of(snd, rcv)

    def test_without_missing_event_raises(self):
        snd, rcv, a, b = sample()
        with pytest.raises(InvalidComputationError):
            computation_of(snd).without_event(b)


class TestPermutationAndMessages:
    def test_permutation_detection(self):
        snd, rcv, a, b = sample()
        first = computation_of(a, b)
        second = computation_of(b, a)
        assert first.is_permutation_of(second)
        assert not first.is_permutation_of(computation_of(a))

    def test_message_bookkeeping(self):
        snd, rcv, a, b = sample()
        partial = computation_of(snd, a)
        assert partial.sent_messages == {snd.message}
        assert partial.received_messages == frozenset()
        assert partial.in_flight_messages == {snd.message}
        complete = computation_of(snd, rcv)
        assert complete.in_flight_messages == frozenset()

    def test_count_on(self):
        snd, rcv, a, b = sample()
        z = computation_of(snd, rcv, a, b)
        assert z.count_on("p") == 2
        assert z.count_on({"p", "q"}) == 4
