"""Unit tests for exhaustive universe exploration."""

import pytest

from repro.core.configuration import EMPTY_CONFIGURATION
from repro.core.errors import UniverseError
from repro.core.validation import is_valid_configuration
from repro.protocols.pingpong import PingPongProtocol
from repro.universe.builder import figure_3_1_universe
from repro.universe.explorer import Universe


class TestExploration:
    def test_pingpong_universe_size(self):
        """One round of ping/pong: null, ping sent, ping received, pong
        sent, pong received — exactly 5 configurations."""
        universe = Universe(PingPongProtocol(rounds=1))
        assert len(universe) == 5
        assert universe.is_complete

    def test_contains_empty_configuration(self, pingpong_universe):
        assert EMPTY_CONFIGURATION in pingpong_universe

    def test_all_configurations_valid(self, pingpong_universe):
        for configuration in pingpong_universe:
            assert is_valid_configuration(configuration)

    def test_bfs_order_is_by_size(self, pingpong_universe):
        sizes = [len(configuration) for configuration in pingpong_universe]
        assert sizes == sorted(sizes)

    def test_closed_under_consistent_cuts(self, broadcast_universe):
        """Every sub-configuration of a member is a member (the closure
        property the composed-relation machinery relies on)."""
        for x, z in broadcast_universe.sub_configuration_pairs():
            assert x in broadcast_universe

    def test_successors_extend_by_one_event(self, pingpong_universe):
        for configuration in pingpong_universe:
            for successor in pingpong_universe.successors(configuration):
                assert len(successor) == len(configuration) + 1
                assert configuration.is_sub_configuration_of(successor)

    def test_truncation_detected(self):
        truncated = Universe(PingPongProtocol(rounds=10), max_events=4)
        assert not truncated.is_complete

    def test_configuration_budget_enforced(self):
        with pytest.raises(UniverseError):
            Universe(PingPongProtocol(rounds=4), max_configurations=3)

    def test_require_rejects_foreigners(self, pingpong_universe):
        from repro.core.configuration import Configuration
        from repro.core.events import internal

        foreign = Configuration({"x": (internal("x"),)})
        with pytest.raises(UniverseError):
            pingpong_universe.require(foreign)


class TestIsoClasses:
    def test_iso_class_members_share_projection(self, pingpong_universe):
        for configuration in pingpong_universe:
            for member in pingpong_universe.iso_class(configuration, {"p"}):
                assert member.projection({"p"}) == configuration.projection({"p"})

    def test_iso_class_is_symmetric(self, pingpong_universe):
        for x in pingpong_universe:
            for y in pingpong_universe.iso_class(x, {"q"}):
                assert x in pingpong_universe.iso_class(y, {"q"})

    def test_empty_set_class_is_everything(self, pingpong_universe):
        for configuration in pingpong_universe:
            assert len(
                pingpong_universe.iso_class(configuration, frozenset())
            ) == len(pingpong_universe)

    def test_d_class_is_singleton(self, pingpong_universe):
        """Configurations are canonical [D]-representatives, so the
        [D]-class of each is itself alone."""
        d = pingpong_universe.processes
        for configuration in pingpong_universe:
            assert pingpong_universe.iso_class(configuration, d) == (configuration,)

    def test_events_view(self, pingpong_universe):
        events = pingpong_universe.events()
        # Two rounds: ping#0/#1 and pong#0/#1, each with a send and receive.
        assert len(events) == 8
        assert all(event.process in {"p", "q"} for event in events)


class TestEnumeratedUniverse:
    def test_prefix_closure(self):
        universe = figure_3_1_universe()
        assert EMPTY_CONFIGURATION in universe
        for configuration in universe:
            for smaller in universe:
                if smaller.is_sub_configuration_of(configuration):
                    assert smaller in universe

    def test_has_no_protocol(self):
        universe = figure_3_1_universe()
        with pytest.raises(UniverseError):
            universe.protocol  # noqa: B018

    def test_complement_uses_observed_processes(self):
        universe = figure_3_1_universe()
        assert universe.complement({"p"}) == {"q"}

    def test_successor_structure(self):
        universe = figure_3_1_universe()
        empty = EMPTY_CONFIGURATION
        assert len(universe.successors(empty)) == 4  # a_p, d_p, b_q, c_q
