"""Unit tests for the protocol abstraction (process-computation sets)."""

import pytest

from repro.core.configuration import EMPTY_CONFIGURATION
from repro.core.errors import ProtocolError
from repro.core.events import internal, receive
from repro.protocols.pingpong import PingPongProtocol
from repro.universe.protocol import Protocol


class BadReceiveProtocol(Protocol):
    """Yields a receive from local_steps — must be rejected."""

    def __init__(self):
        super().__init__(("p", "q"))

    def local_steps(self, process, history):
        if process == "p":
            from repro.core.events import Message

            yield receive(Message("q", "p", "oops"))


class TestProtocolBasics:
    def test_needs_processes(self):
        class Empty(Protocol):
            def local_steps(self, process, history):
                return ()

        with pytest.raises(ProtocolError):
            Empty(())

    def test_complement(self):
        protocol = PingPongProtocol()
        assert protocol.complement({"p"}) == {"q"}
        assert protocol.complement(set()) == {"p", "q"}
        with pytest.raises(ProtocolError):
            protocol.complement({"zebra"})

    def test_local_steps_must_not_yield_receives(self):
        protocol = BadReceiveProtocol()
        with pytest.raises(ProtocolError):
            protocol.enabled_events(EMPTY_CONFIGURATION)

    def test_enabled_events_order_is_deterministic(self):
        protocol = PingPongProtocol()
        first = protocol.enabled_events(EMPTY_CONFIGURATION)
        second = protocol.enabled_events(EMPTY_CONFIGURATION)
        assert first == second


class TestEnabling:
    def test_initially_only_ping_send(self):
        protocol = PingPongProtocol(rounds=1)
        events = protocol.enabled_events(EMPTY_CONFIGURATION)
        assert len(events) == 1
        assert events[0].is_send

    def test_receive_enabled_when_in_flight(self):
        protocol = PingPongProtocol(rounds=1)
        (send_event,) = protocol.enabled_events(EMPTY_CONFIGURATION)
        configuration = EMPTY_CONFIGURATION.extend(send_event)
        events = protocol.enabled_events(configuration)
        receives = [event for event in events if event.is_receive]
        assert len(receives) == 1
        assert receives[0].message == send_event.message

    def test_quiescence_after_rounds(self):
        protocol = PingPongProtocol(rounds=0)
        assert list(protocol.enabled_events(EMPTY_CONFIGURATION)) == []


class TestMembership:
    def test_reachable_history_is_process_computation(self, pingpong_universe):
        protocol = pingpong_universe.protocol
        for configuration in pingpong_universe:
            for process in configuration.processes:
                assert protocol.is_process_computation(
                    process, configuration.history(process)
                )

    def test_foreign_history_rejected(self):
        protocol = PingPongProtocol()
        alien = (internal("p", tag="alien"),)
        assert not protocol.is_process_computation("p", alien)

    def test_misfiled_history_rejected(self):
        protocol = PingPongProtocol()
        alien = (internal("q", tag="alien"),)
        assert not protocol.is_process_computation("p", alien)


class TestEventHelpers:
    def test_next_message_sequences_by_tag_and_receiver(self):
        first = Protocol.next_message((), "p", "q", "ping")
        assert first.seq == 0
        from repro.core.events import send

        history = (send(first),)
        second = Protocol.next_message(history, "p", "q", "ping")
        assert second.seq == 1
        other_tag = Protocol.next_message(history, "p", "q", "other")
        assert other_tag.seq == 0

    def test_next_internal_sequences_by_tag(self):
        first = Protocol.next_internal((), "p", "step")
        assert first.seq == 0
        second = Protocol.next_internal((first,), "p", "step")
        assert second.seq == 1
