"""The twelve knowledge facts of §4.1 over several universes."""

from repro.knowledge.axioms import (
    check_all_facts,
    check_fact_3,
    check_fact_6,
    check_fact_9,
    check_fact_10,
    check_fact_11,
    check_fact_12,
)
from repro.knowledge.formula import Knows, Not
from repro.knowledge.predicates import (
    did_internal,
    event_count_at_least,
    has_received,
    has_sent,
)


class TestAllFactsPerUniverse:
    def test_pingpong(self, pingpong_universe, pingpong_evaluator):
        results = check_all_facts(
            pingpong_universe,
            has_received("q", "ping"),
            has_sent("p", "ping"),
            frozenset({"p"}),
            frozenset({"q"}),
            evaluator=pingpong_evaluator,
        )
        assert all(results.values()), results

    def test_broadcast(self, broadcast_universe, broadcast_evaluator):
        results = check_all_facts(
            broadcast_universe,
            did_internal("a", "learn"),
            has_received("b", "fact"),
            frozenset({"b"}),
            frozenset({"c"}),
            evaluator=broadcast_evaluator,
        )
        assert all(results.values()), results

    def test_toggle(self, toggle_universe, toggle_evaluator):
        from repro.protocols.toggle import bit_atom

        results = check_all_facts(
            toggle_universe,
            bit_atom(toggle_universe.protocol),
            has_received("q", "report"),
            frozenset({"q"}),
            frozenset({"p"}),
            evaluator=toggle_evaluator,
        )
        assert all(results.values()), results

    def test_token_bus_with_set_knowers(self, token_bus_universe, token_bus_evaluator):
        from repro.protocols.token_bus import holds_token_atom

        protocol = token_bus_universe.protocol
        results = check_all_facts(
            token_bus_universe,
            holds_token_atom(protocol, "r"),
            holds_token_atom(protocol, "p"),
            frozenset({"q", "r"}),
            frozenset({"s"}),
            evaluator=token_bus_evaluator,
        )
        assert all(results.values()), results


class TestIndividualFacts:
    def test_monotonicity_in_the_process_set(self, pingpong_evaluator):
        b = has_received("q", "ping")
        assert check_fact_3(pingpong_evaluator, b, {"p"}, {"q"})

    def test_veridicality_concretely(self, pingpong_evaluator):
        b = has_received("q", "ping")
        knows_b = Knows("p", b)
        for configuration in pingpong_evaluator.extension(knows_b):
            assert b.fn(configuration)

    def test_conjunction_distribution(self, pingpong_evaluator):
        assert check_fact_6(
            pingpong_evaluator,
            has_received("q", "ping"),
            has_sent("q", "pong"),
            {"p"},
        )

    def test_consequence_closure(self, pingpong_evaluator):
        # has_received(q, ping) implies event_count >= 1 at all computations
        assert check_fact_9(
            pingpong_evaluator,
            has_received("q", "ping"),
            event_count_at_least({"p", "q"}, 1),
            {"p"},
        )

    def test_positive_introspection(self, pingpong_evaluator):
        assert check_fact_10(pingpong_evaluator, has_received("q", "ping"), {"p"})

    def test_negative_introspection_lemma_2(self, pingpong_evaluator):
        """The paper's Lemma 2, philosophically contested elsewhere,
        is a theorem of the isomorphism semantics."""
        assert check_fact_11(pingpong_evaluator, has_received("q", "ping"), {"p"})

    def test_knowledge_of_constants(self, pingpong_evaluator):
        assert check_fact_12(pingpong_evaluator, True, {"p"})
        assert check_fact_12(pingpong_evaluator, False, {"p"})

    def test_nobody_knows_a_falsehood(self, pingpong_evaluator):
        b = has_received("q", "ping")
        contradiction = b & Not(b)
        assert len(pingpong_evaluator.extension(Knows("p", contradiction))) == 0
