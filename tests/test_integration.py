"""End-to-end integration: the paper's full pipeline on one universe.

One test class walks a single token-bus universe through every layer —
exploration, isomorphism algebra, chains, fusion, knowledge, transfer
theorems — the way the paper's sections build on one another.  A second
class cross-validates simulator runs against exhaustively explored
universes.
"""

import pytest

from repro.causality.chains import chain_in_suffix
from repro.isomorphism.algebra import check_idempotence, check_inversion
from repro.isomorphism.extension import check_theorem_3
from repro.isomorphism.fundamental import check_theorem_1
from repro.isomorphism.fusion import fuse, fusion_side_conditions
from repro.isomorphism.relation import isomorphic
from repro.knowledge.axioms import check_all_facts
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows, Not
from repro.knowledge.transfer import (
    check_theorem_5_gain,
    check_theorem_6_loss,
)
from repro.protocols.token_bus import TokenBusProtocol, holds_token_atom
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


class TestFullPipelineOnTokenBus:
    @pytest.fixture(scope="class")
    def universe(self):
        return Universe(TokenBusProtocol(stations=("p", "q", "r"), max_hops=3))

    @pytest.fixture(scope="class")
    def evaluator(self, universe):
        return KnowledgeEvaluator(universe)

    def test_section_3_algebra(self, universe):
        assert check_idempotence(universe, {"p"})
        assert check_inversion(universe, [{"p"}, {"q"}])

    def test_section_3_2_theorem_1(self, universe):
        sequences = [[{"p"}, {"q"}], [{"q"}, {"p"}], [{"p"}, {"q"}, {"r"}]]
        assert check_theorem_1(universe, sequences) > 0

    def test_section_3_3_fusion(self, universe):
        count = 0
        for x, y in universe.sub_configuration_pairs():
            for z in universe:
                if not x.is_sub_configuration_of(z):
                    continue
                if fusion_side_conditions(x, y, z, {"p"}, universe.processes):
                    continue
                w = fuse(x, y, z, {"p"}, universe.processes)
                assert isomorphic(y, w, {"p"})
                assert w in universe
                count += 1
        assert count > 0

    def test_section_3_4_event_semantics(self, universe):
        counts = check_theorem_3(universe)
        assert counts["receive"] > 0 and counts["send"] > 0

    def test_section_4_knowledge_axioms(self, universe, evaluator):
        protocol = universe.protocol
        results = check_all_facts(
            universe,
            holds_token_atom(protocol, "q"),
            holds_token_atom(protocol, "p"),
            frozenset({"p"}),
            frozenset({"q"}),
            evaluator=evaluator,
        )
        assert all(results.values()), results

    def test_section_4_3_transfer(self, universe, evaluator):
        protocol = universe.protocol
        b = holds_token_atom(protocol, "q")
        gain = check_theorem_5_gain(
            evaluator, [frozenset({"r"})], b, check_receive=False
        )
        assert gain.holds
        loss = check_theorem_6_loss(
            evaluator, [frozenset({"q"})], Not(b), check_send=False
        )
        assert loss.holds

    def test_knowledge_follows_the_token(self, universe, evaluator):
        """When q holds the token, q knows p does not — and this knowledge
        appeared only through the token's process chain."""
        protocol = universe.protocol
        q_holds = holds_token_atom(protocol, "q")
        p_holds = holds_token_atom(protocol, "p")
        knows = Knows("q", Not(p_holds))
        for configuration in evaluator.extension(q_holds):
            assert evaluator.holds(knows, configuration)
        for configuration in evaluator.extension(knows):
            if len(configuration) == 0:
                continue
            # q learnt this after the token crossed p -> q:
            from repro.core.configuration import EMPTY_CONFIGURATION

            assert (
                chain_in_suffix(configuration, EMPTY_CONFIGURATION, ["p", "q"])
                is not None
            )


class TestSimulatorAgainstUniverse:
    def test_every_simulated_run_stays_in_the_universe(self):
        protocol = TokenBusProtocol(stations=("p", "q", "r"), max_hops=3)
        universe = Universe(protocol)
        for seed in range(10):
            trace = simulate(
                TokenBusProtocol(stations=("p", "q", "r"), max_hops=3),
                RandomScheduler(seed),
            )
            for configuration in trace.configurations():
                assert configuration in universe

    def test_universe_members_are_simulatable(self):
        """Every maximal configuration is reached by some scheduler run —
        spot-checked by collecting final configurations over many seeds."""
        protocol = TokenBusProtocol(stations=("p", "q"), max_hops=2)
        universe = Universe(protocol)
        maximal = {
            configuration
            for configuration in universe
            if not universe.successors(configuration)
        }
        reached = set()
        for seed in range(20):
            trace = simulate(
                TokenBusProtocol(stations=("p", "q"), max_hops=2),
                RandomScheduler(seed),
            )
            reached.add(trace.final_configuration)
        assert reached <= maximal
        assert reached  # at least one maximal configuration is realised
