"""Unit tests for the happened-before relation (§3.1 / Lamport)."""

from repro.causality.order import CausalOrder, happened_before, segment_of
from repro.core.computation import computation_of
from repro.core.configuration import Configuration
from repro.core.events import internal, message_pair


def diamond():
    """p sends to q and r; q and r each send to s."""
    pq_s, pq_r = message_pair("p", "q", "m1")
    pr_s, pr_r = message_pair("p", "r", "m2")
    qs_s, qs_r = message_pair("q", "s", "m3")
    rs_s, rs_r = message_pair("r", "s", "m4")
    z = computation_of(pq_s, pr_s, pq_r, pr_r, qs_s, rs_s, qs_r, rs_r)
    return z, (pq_s, pq_r, pr_s, pr_r, qs_s, qs_r, rs_s, rs_r)


class TestHappenedBefore:
    def test_reflexive(self):
        z, events = diamond()
        order = CausalOrder(z)
        for event in events:
            assert order.happened_before(event, event)

    def test_process_order(self):
        z, (pq_s, pq_r, pr_s, *_rest) = diamond()
        order = CausalOrder(z)
        assert order.happened_before(pq_s, pr_s)
        assert not order.happened_before(pr_s, pq_s)

    def test_message_order(self):
        z, (pq_s, pq_r, *_rest) = diamond()
        order = CausalOrder(z)
        assert order.happened_before(pq_s, pq_r)
        assert order.strictly_before(pq_s, pq_r)

    def test_transitivity_across_processes(self):
        z, (pq_s, pq_r, pr_s, pr_r, qs_s, qs_r, rs_s, rs_r) = diamond()
        order = CausalOrder(z)
        assert order.happened_before(pq_s, qs_r)  # p -> q -> s

    def test_concurrency(self):
        z, (pq_s, pq_r, pr_s, pr_r, qs_s, qs_r, rs_s, rs_r) = diamond()
        order = CausalOrder(z)
        assert order.concurrent(pq_r, pr_r)
        assert not order.concurrent(pq_s, pq_s)

    def test_unknown_events_are_unrelated(self):
        z, _ = diamond()
        order = CausalOrder(z)
        stranger = internal("x", tag="elsewhere")
        assert not order.happened_before(stranger, stranger)

    def test_wrapper_function(self):
        z, (pq_s, pq_r, *_rest) = diamond()
        assert happened_before(z, pq_s, pq_r)


class TestClosures:
    def test_causal_past_and_future(self):
        z, (pq_s, pq_r, pr_s, pr_r, qs_s, qs_r, rs_s, rs_r) = diamond()
        order = CausalOrder(z)
        assert pq_s in order.causal_past(qs_r)
        assert qs_r in order.causal_future(pq_s)
        assert rs_s not in order.causal_future(pq_r)

    def test_forward_closure_is_reflexive(self):
        z, (pq_s, *_rest) = diamond()
        order = CausalOrder(z)
        assert pq_s in order.forward_closure([pq_s])


class TestSegments:
    def test_segment_of_configuration(self):
        z, _ = diamond()
        configuration = Configuration.from_computation(z)
        assert segment_of(configuration) == segment_of(z)

    def test_suffix_segment_restriction(self):
        """Message edges with the send outside the segment are dropped."""
        snd, rcv = message_pair("p", "q", "m")
        a = internal("q", tag="later")
        segment = {"q": (rcv, a)}  # the send is not part of the segment
        order = CausalOrder(segment)
        assert order.happened_before(rcv, a)
        assert snd not in order

    def test_topological_order_is_complete_and_sorted(self):
        z, events = diamond()
        order = CausalOrder(z)
        topo = order.topological_order
        assert len(topo) == len(events)
        position = {event: index for index, event in enumerate(topo)}
        for first in events:
            for second in events:
                if first != second and order.happened_before(first, second):
                    assert position[first] < position[second]

    def test_acyclicity(self):
        z, _ = diamond()
        assert CausalOrder(z).is_acyclic()
