"""Property-based tests (hypothesis) on core data structures and laws.

Strategies build random *valid* computations over a small process pool:
internal events plus send/receive pairs with the receive scheduled after
the send, so every generated sequence is a system computation.  The
properties are the model-level invariants everything else rests on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.causality.chains import has_process_chain, has_process_chain_naive
from repro.causality.clocks import vector_timestamps
from repro.causality.order import CausalOrder
from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.events import internal, message_pair
from repro.core.validation import is_system_computation, is_valid_configuration
from repro.isomorphism.algebra import normalise_sequence
from repro.isomorphism.relation import agreement_set, isomorphic

PROCESSES = ("p", "q", "r")


@st.composite
def computations(draw, max_blocks: int = 6) -> Computation:
    """Random valid system computations.

    Builds a pool of internal events and message pairs, then interleaves
    them with sends always preceding their receives.
    """
    blocks = draw(st.integers(min_value=0, max_value=max_blocks))
    pending: list = []
    events: list = []
    message_counter = 0
    for index in range(blocks):
        kind = draw(st.sampled_from(["internal", "message"]))
        if kind == "internal":
            process = draw(st.sampled_from(PROCESSES))
            events.append(internal(process, tag="t", seq=index))
        else:
            sender = draw(st.sampled_from(PROCESSES))
            receiver = draw(
                st.sampled_from([name for name in PROCESSES if name != sender])
            )
            snd, rcv = message_pair(sender, receiver, "m", seq=message_counter)
            message_counter += 1
            events.append(snd)
            pending.append(rcv)
        # Maybe flush a pending receive.
        if pending and draw(st.booleans()):
            events.append(pending.pop(0))
    events.extend(pending)
    return Computation(events)


process_sets = st.sets(st.sampled_from(PROCESSES), max_size=3).map(frozenset)
set_sequences = st.lists(process_sets, min_size=1, max_size=4)


class TestModelInvariants:
    @given(computations())
    @settings(max_examples=60, deadline=None)
    def test_generated_computations_are_valid(self, z):
        assert is_system_computation(z)

    @given(computations())
    @settings(max_examples=60, deadline=None)
    def test_prefix_closure(self, z):
        for prefix in z.prefixes():
            assert is_system_computation(prefix)

    @given(computations())
    @settings(max_examples=60, deadline=None)
    def test_configuration_round_trip(self, z):
        configuration = Configuration.from_computation(z)
        assert is_valid_configuration(configuration)
        relinearized = configuration.linearize()
        assert relinearized.is_permutation_of(z)
        assert Configuration.from_computation(relinearized) == configuration

    @given(computations())
    @settings(max_examples=60, deadline=None)
    def test_projection_is_a_partition(self, z):
        total = sum(len(z.projection(process)) for process in PROCESSES)
        assert total == len(z)


class TestIsomorphismLaws:
    @given(computations(), process_sets)
    @settings(max_examples=60, deadline=None)
    def test_reflexivity(self, z, p_set):
        assert isomorphic(z, z, p_set)

    @given(computations(), computations(), process_sets)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y, p_set):
        assert isomorphic(x, y, p_set) == isomorphic(y, x, p_set)

    @given(computations(), computations())
    @settings(max_examples=60, deadline=None)
    def test_agreement_set_is_the_largest(self, x, y):
        agreement = agreement_set(x, y)
        assert isomorphic(x, y, agreement)
        for process in set(PROCESSES) - agreement:
            if x.projection(process) or y.projection(process):
                assert not isomorphic(x, y, agreement | {process})

    @given(computations(), computations(), process_sets, process_sets)
    @settings(max_examples=60, deadline=None)
    def test_union_property(self, x, y, first, second):
        assert isomorphic(x, y, first | second) == (
            isomorphic(x, y, first) and isomorphic(x, y, second)
        )

    @given(set_sequences)
    @settings(max_examples=80, deadline=None)
    def test_normalisation_is_idempotent(self, sets):
        once = normalise_sequence(sets)
        assert normalise_sequence(once) == once

    @given(set_sequences)
    @settings(max_examples=80, deadline=None)
    def test_normalisation_never_grows(self, sets):
        assert len(normalise_sequence(sets)) <= len(sets)


class TestCausalityLaws:
    @given(computations())
    @settings(max_examples=40, deadline=None)
    def test_sequence_order_extends_causal_order(self, z):
        """e -> d implies e occurs before d in the sequence."""
        order = CausalOrder(z)
        events = list(z)
        position = {event: index for index, event in enumerate(events)}
        for first in events:
            for second in events:
                if first != second and order.happened_before(first, second):
                    assert position[first] < position[second]

    @given(computations())
    @settings(max_examples=30, deadline=None)
    def test_vector_clocks_characterise_causality(self, z):
        stamps = vector_timestamps(z)
        order = CausalOrder(z)
        for first in z:
            for second in z:
                if first == second:
                    continue
                causal = order.happened_before(first, second)
                dominated = stamps[second].dominates(stamps[first]) and (
                    stamps[first] != stamps[second]
                )
                assert causal == dominated

    @given(computations(), set_sequences)
    @settings(max_examples=40, deadline=None)
    def test_chain_detectors_agree(self, z, sets):
        assert has_process_chain(z, sets) == has_process_chain_naive(z, sets)

    @given(computations(), set_sequences)
    @settings(max_examples=40, deadline=None)
    def test_chain_padding_invariance(self, z, sets):
        """Observation 1: <... P ...> iff <... P P ...>."""
        padded = list(sets[:1]) + list(sets)
        assert has_process_chain(z, sets) == has_process_chain(z, padded)


class TestTheorem1Property:
    @given(computations(), set_sequences)
    @settings(max_examples=40, deadline=None)
    def test_constructive_witness_or_chain(self, z, sets):
        """Theorem 1, constructively, on random computations: either the
        chain exists in (null, z) or the witness construction produces a
        linked sequence of valid configurations."""
        from repro.isomorphism.fundamental import composition_witness_by_chains

        empty = Configuration({})
        config = Configuration.from_computation(z)
        witness = composition_witness_by_chains(empty, config, sets)
        if witness is None:
            assert has_process_chain(config, sets)
            return
        assert witness[0] == empty and witness[-1] == config
        for index, p_set in enumerate(sets):
            assert isomorphic(witness[index], witness[index + 1], p_set)
        for intermediate in witness:
            assert is_valid_configuration(intermediate)
