"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_protocol, main, make_parser


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explore", "nonsense"])


class TestCommands:
    def test_experiments_lists_all_ids(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for exp_id, _, _ in EXPERIMENTS:
            assert exp_id in output
        assert len(EXPERIMENTS) == 14

    def test_explore_pingpong(self, capsys):
        assert main(["explore", "pingpong", "--rounds", "1"]) == 0
        output = capsys.readouterr().out
        assert "5 configurations" in output
        assert "self loop" in output

    def test_explore_suppresses_large_diagrams(self, capsys):
        assert main(
            ["explore", "tokenbus", "--hops", "4", "--diagram-limit", "3"]
        ) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_check_broadcast(self, capsys):
        assert main(["check", "broadcast", "--size", "3"]) == 0
        output = capsys.readouterr().out
        assert "all hold" in output
        assert "Theorem 1" in output

    def test_check_pingpong(self, capsys):
        assert main(["check", "pingpong", "--rounds", "1"]) == 0
        assert "knowledge facts 1-12: all hold" in capsys.readouterr().out

    def test_simulate_election(self, capsys):
        assert main(["simulate", "election", "--size", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "undelivered" in output
        assert "n0 |" in output

    def test_simulate_snapshot(self, capsys):
        assert main(["simulate", "snapshot", "--size", "3"]) == 0
        assert "0 undelivered" in capsys.readouterr().out

    def test_bench_writes_trajectory_file(self, capsys, tmp_path, monkeypatch):
        import json

        # Shrink the workload: quick mode, output into a temp directory.
        assert main(
            ["bench", "--quick", "--output-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "universe_star_broadcast_n3" in output
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        document = json.loads(written[0].read_text())
        assert document["repeats"] == 1
        assert document["mode"] == "quick"
        benchmarks = document["benchmarks"]
        assert "evaluator_star_broadcast_n3" in benchmarks
        assert "iso_composed_class_star_n3" in benchmarks

    def test_bench_no_write(self, capsys, tmp_path):
        import os

        before = set(os.listdir(tmp_path))
        assert main(["bench", "--quick", "--check", "--no-write",
                     "--output-dir", str(tmp_path)]) == 0
        assert "benchmark" in capsys.readouterr().out
        assert set(os.listdir(tmp_path)) == before

    def test_simulate_toggle(self, capsys):
        assert main(["simulate", "toggle", "--flips", "2"]) == 0


class TestBuildProtocol:
    def test_every_choice_builds(self):
        parser = make_parser()
        for name in ("pingpong", "tokenbus", "broadcast", "toggle",
                     "election", "snapshot"):
            args = parser.parse_args(["explore", name])
            assert build_protocol(name, args) is not None

    def test_broadcast_topologies(self, capsys):
        for topology, count in (("line", 6), ("star", 14), ("ring", 66)):
            assert main(
                ["explore", "broadcast", "--topology", topology, "--size", "3"]
            ) == 0
            assert f"{count} configurations" in capsys.readouterr().out


def build_checkpoint(tmp_path, *extra):
    """A complete star n=4 checkpointed exploration via the CLI."""
    path = tmp_path / "u.ckpt"
    assert main(
        ["explore", "broadcast", "--topology", "star", "--size", "4",
         "--checkpoint", str(path), *extra]
    ) == 0
    return path


def corrupt_tail(path):
    seg = sorted(path.parent.glob(f"{path.name}.g*-*.seg"))[-1]
    raw = bytearray(seg.read_bytes())
    raw[-1] ^= 0xFF
    seg.write_bytes(bytes(raw))
    return seg


class TestCheckpointCommand:
    def test_verify_ok(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(path)]) == 0
        output = capsys.readouterr().out
        assert "INTEGRITY: ok" in output
        assert "format version: 2" in output

    def test_verify_corrupt_exits_nonzero(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        corrupt_tail(path)
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(path)]) == 1
        output = capsys.readouterr().out
        assert "INTEGRITY: FAILED" in output
        assert "salvageable" in output

    def test_inspect_corrupt_reports_but_exits_zero(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        corrupt_tail(path)
        capsys.readouterr()
        assert main(["checkpoint", "inspect", str(path)]) == 0
        assert "corrupt" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["checkpoint", "verify", str(tmp_path / "no.ckpt")]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_resume_via_cli_round_trip(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        capsys.readouterr()
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path)]
        ) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out


class TestExploreRobustnessFlags:
    def test_strict_resume_of_corrupt_checkpoint_exits_two(
        self, capsys, tmp_path
    ):
        path = build_checkpoint(tmp_path)
        corrupt_tail(path)
        capsys.readouterr()
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path), "--strict"]
        ) == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_salvage_resume_prints_recovery(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        corrupt_tail(path)
        capsys.readouterr()
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path)]
        ) == 0
        output = capsys.readouterr().out
        assert "recovery: corrupt_segment" in output
        assert "salvage-truncate" in output

    def test_incompatible_checkpoint_exits_two(self, capsys, tmp_path):
        path = build_checkpoint(tmp_path)
        capsys.readouterr()
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "5",
             "--checkpoint", str(path)]
        ) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_fault_spec_torn_save_needs_checkpoint(self, capsys):
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--fault", "torn_save@2"]
        ) == 2
        assert "requires a checkpoint" in capsys.readouterr().err

    def test_bad_fault_spec_exits_two(self, capsys):
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--fault", "torn_save:0@2"]
        ) == 2
        assert "takes no shard" in capsys.readouterr().err

    def test_corrupt_segment_fault_round_trip(self, capsys, tmp_path):
        """Inject the fault via the CLI, then verify + salvage via the
        CLI: the full operator workflow."""
        path = tmp_path / "u.ckpt"
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path), "--fault", "corrupt_segment@2"]
        ) == 0
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(path)]) == 1
        capsys.readouterr()
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path)]
        ) == 0
        assert "salvage-truncate" in capsys.readouterr().out


class TestStorageFaultCli:
    """Hostile-storage workflows through the operator surface: --fault
    storage kinds, the loud DEGRADED banner, and --json reports."""

    def test_inspect_json_report(self, capsys, tmp_path):
        import json

        path = build_checkpoint(tmp_path)
        capsys.readouterr()
        assert main(["checkpoint", "inspect", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["valid"] is True
        assert report["format_version"] == 2
        assert report["segments"] and all(
            row["status"] == "ok" for row in report["segments"]
        )

    def test_verify_json_corrupt_exits_one(self, capsys, tmp_path):
        import json

        path = build_checkpoint(tmp_path)
        corrupt_tail(path)
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["valid"] is False
        # inspect keeps the same report but only fails on unreadable.
        capsys.readouterr()
        assert main(["checkpoint", "inspect", str(path), "--json"]) == 0

    def test_json_missing_file_exits_two(self, capsys, tmp_path):
        import json

        assert main(
            ["checkpoint", "inspect", str(tmp_path / "no.ckpt"), "--json"]
        ) == 2
        report = json.loads(capsys.readouterr().out)
        assert report["exists"] is False

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_enospc_degrades_loudly_and_manifest_survives(
        self, capsys, tmp_path
    ):
        """ENOSPC mid-run: exit 0, one DEGRADED banner on stderr, and
        the committed prefix still verifies clean."""
        path = tmp_path / "u.ckpt"
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path), "--fault", "enospc@1"]
        ) == 0
        captured = capsys.readouterr()
        assert "checkpoint DEGRADED" in captured.err
        assert "disable-checkpointing" in captured.out
        assert main(["checkpoint", "verify", str(path)]) == 0

    def test_transient_fault_prints_retry_recovery(self, capsys, tmp_path):
        path = tmp_path / "u.ckpt"
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--checkpoint", str(path), "--fault", "eio_write@1"]
        ) == 0
        captured = capsys.readouterr()
        assert "recovery: storage_retry -> retry" in captured.out
        assert "DEGRADED" not in captured.err
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(path)]) == 0

    def test_storage_fault_without_target_exits_two(self, capsys):
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--fault", "enospc@1"]
        ) == 2
        assert "checkpoint path or a spill" in capsys.readouterr().err

    def test_shard_qualified_storage_kind_exits_two(self, capsys):
        assert main(
            ["explore", "broadcast", "--topology", "star", "--size", "4",
             "--fault", "enospc:0@1"]
        ) == 2
        assert "takes no shard" in capsys.readouterr().err
