"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_protocol, main, make_parser


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explore", "nonsense"])


class TestCommands:
    def test_experiments_lists_all_ids(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for exp_id, _, _ in EXPERIMENTS:
            assert exp_id in output
        assert len(EXPERIMENTS) == 14

    def test_explore_pingpong(self, capsys):
        assert main(["explore", "pingpong", "--rounds", "1"]) == 0
        output = capsys.readouterr().out
        assert "5 configurations" in output
        assert "self loop" in output

    def test_explore_suppresses_large_diagrams(self, capsys):
        assert main(
            ["explore", "tokenbus", "--hops", "4", "--diagram-limit", "3"]
        ) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_check_broadcast(self, capsys):
        assert main(["check", "broadcast", "--size", "3"]) == 0
        output = capsys.readouterr().out
        assert "all hold" in output
        assert "Theorem 1" in output

    def test_check_pingpong(self, capsys):
        assert main(["check", "pingpong", "--rounds", "1"]) == 0
        assert "knowledge facts 1-12: all hold" in capsys.readouterr().out

    def test_simulate_election(self, capsys):
        assert main(["simulate", "election", "--size", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "undelivered" in output
        assert "n0 |" in output

    def test_simulate_snapshot(self, capsys):
        assert main(["simulate", "snapshot", "--size", "3"]) == 0
        assert "0 undelivered" in capsys.readouterr().out

    def test_simulate_toggle(self, capsys):
        assert main(["simulate", "toggle", "--flips", "2"]) == 0


class TestBuildProtocol:
    def test_every_choice_builds(self):
        parser = make_parser()
        for name in ("pingpong", "tokenbus", "broadcast", "toggle",
                     "election", "snapshot"):
            args = parser.parse_args(["explore", name])
            assert build_protocol(name, args) is not None
