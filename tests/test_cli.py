"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_protocol, main, make_parser


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explore", "nonsense"])


class TestCommands:
    def test_experiments_lists_all_ids(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for exp_id, _, _ in EXPERIMENTS:
            assert exp_id in output
        assert len(EXPERIMENTS) == 14

    def test_explore_pingpong(self, capsys):
        assert main(["explore", "pingpong", "--rounds", "1"]) == 0
        output = capsys.readouterr().out
        assert "5 configurations" in output
        assert "self loop" in output

    def test_explore_suppresses_large_diagrams(self, capsys):
        assert main(
            ["explore", "tokenbus", "--hops", "4", "--diagram-limit", "3"]
        ) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_check_broadcast(self, capsys):
        assert main(["check", "broadcast", "--size", "3"]) == 0
        output = capsys.readouterr().out
        assert "all hold" in output
        assert "Theorem 1" in output

    def test_check_pingpong(self, capsys):
        assert main(["check", "pingpong", "--rounds", "1"]) == 0
        assert "knowledge facts 1-12: all hold" in capsys.readouterr().out

    def test_simulate_election(self, capsys):
        assert main(["simulate", "election", "--size", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "undelivered" in output
        assert "n0 |" in output

    def test_simulate_snapshot(self, capsys):
        assert main(["simulate", "snapshot", "--size", "3"]) == 0
        assert "0 undelivered" in capsys.readouterr().out

    def test_bench_writes_trajectory_file(self, capsys, tmp_path, monkeypatch):
        import json

        # Shrink the workload: quick mode, output into a temp directory.
        assert main(
            ["bench", "--quick", "--output-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "universe_star_broadcast_n3" in output
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        document = json.loads(written[0].read_text())
        assert document["repeats"] == 1
        assert document["mode"] == "quick"
        benchmarks = document["benchmarks"]
        assert "evaluator_star_broadcast_n3" in benchmarks
        assert "iso_composed_class_star_n3" in benchmarks

    def test_bench_no_write(self, capsys, tmp_path):
        import os

        before = set(os.listdir(tmp_path))
        assert main(["bench", "--quick", "--check", "--no-write",
                     "--output-dir", str(tmp_path)]) == 0
        assert "benchmark" in capsys.readouterr().out
        assert set(os.listdir(tmp_path)) == before

    def test_simulate_toggle(self, capsys):
        assert main(["simulate", "toggle", "--flips", "2"]) == 0


class TestBuildProtocol:
    def test_every_choice_builds(self):
        parser = make_parser()
        for name in ("pingpong", "tokenbus", "broadcast", "toggle",
                     "election", "snapshot"):
            args = parser.parse_args(["explore", name])
            assert build_protocol(name, args) is not None
