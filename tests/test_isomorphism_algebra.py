"""The ten algebraic properties of §3, checked over real universes."""

import pytest

from repro.isomorphism.algebra import (
    check_absorption,
    check_all_properties,
    check_concatenation,
    check_containment,
    check_equivalence,
    check_idempotence,
    check_inversion,
    check_reflexivity,
    check_substitution,
    check_union,
    normalise_sequence,
    sequences_equal,
)

P = frozenset("p")
Q = frozenset("q")
PQ = frozenset({"p", "q"})
EMPTY = frozenset()


class TestNormalisation:
    def test_idempotence_collapses(self):
        assert normalise_sequence([P, P]) == (P,)

    def test_absorption_collapses_to_smaller(self):
        assert normalise_sequence([PQ, P]) == (P,)
        assert normalise_sequence([P, PQ]) == (P,)

    def test_longer_sequences(self):
        assert normalise_sequence([P, P, Q, PQ, Q]) == (P, Q)

    def test_incomparable_sets_untouched(self):
        assert normalise_sequence([P, Q, P]) == (P, Q, P)

    def test_normalised_sequences_denote_the_same_relation(
        self, pingpong_universe
    ):
        for sequence in ([P, P], [PQ, P], [P, PQ, Q], [Q, P, P, Q]):
            assert sequences_equal(
                pingpong_universe, sequence, normalise_sequence(sequence)
            )


class TestProperties:
    def test_property_1_equivalence(self, pingpong_universe):
        for subset in (EMPTY, P, Q, PQ):
            assert check_equivalence(pingpong_universe, subset)

    def test_property_2_substitution(self, pingpong_universe):
        assert check_substitution(pingpong_universe, [P, P], [P], [Q], [Q])

    def test_property_3_idempotence(self, pingpong_universe):
        for subset in (P, Q, PQ):
            assert check_idempotence(pingpong_universe, subset)

    def test_property_4_reflexivity(self, pingpong_universe):
        assert check_reflexivity(pingpong_universe, [P, Q, P])

    def test_property_5_inversion(self, pingpong_universe):
        assert check_inversion(pingpong_universe, [P, Q])
        assert check_inversion(pingpong_universe, [P, Q, PQ])

    def test_property_6_concatenation(self, pingpong_universe):
        assert check_concatenation(pingpong_universe, [P], [Q])
        assert check_concatenation(pingpong_universe, [P, Q], [Q, P])

    def test_property_7_union(self, pingpong_universe):
        assert check_union(pingpong_universe, P, Q)
        assert check_union(pingpong_universe, P, PQ)

    def test_property_8_containment(self, pingpong_universe):
        assert check_containment(pingpong_universe, PQ, P)
        assert check_containment(pingpong_universe, P, Q)

    def test_property_10_absorption(self, pingpong_universe):
        assert check_absorption(pingpong_universe, PQ, P)
        assert check_absorption(pingpong_universe, P, P)

    @pytest.mark.slow
    def test_all_properties_pingpong(self, pingpong_universe):
        results = check_all_properties(pingpong_universe)
        assert all(results.values()), results

    def test_all_properties_broadcast(self, broadcast_universe):
        results = check_all_properties(broadcast_universe, max_sets=6)
        assert all(results.values()), results
