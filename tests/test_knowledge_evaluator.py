"""Unit tests for the knowledge model checker (§4.1 definition)."""

import pytest

from repro.core.errors import FormulaError
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import (
    FALSE,
    TRUE,
    Iff,
    Implies,
    Knows,
    Not,
    Sure,
)
from repro.knowledge.predicates import event_count_at_least, has_received, has_sent
from repro.protocols.pingpong import PingPongProtocol
from repro.universe.explorer import Universe


class TestDefinition:
    def test_knows_is_universal_over_the_class(self, pingpong_universe):
        """(P knows b) at x  ≡  ∀y: x [P] y: b at y — checked literally."""
        evaluator = KnowledgeEvaluator(pingpong_universe)
        b = has_received("q", "ping")
        knows_b = Knows("p", b)
        b_extension = evaluator.extension(b)
        for x in pingpong_universe:
            expected = all(
                y in b_extension for y in pingpong_universe.iso_class(x, {"p"})
            )
            assert evaluator.holds(knows_b, x) == expected

    def test_pong_teaches_p_that_q_received(self, pingpong_universe):
        """The knowledge-gain story of the ping-pong protocol."""
        evaluator = KnowledgeEvaluator(pingpong_universe)
        b = has_received("q", "ping")
        knows_b = Knows("p", b)
        for x in pingpong_universe:
            got_pong = has_received("p", "pong").fn(x)
            if got_pong:
                assert evaluator.holds(knows_b, x)
            if evaluator.holds(knows_b, x):
                assert b.fn(x)  # veridicality, concretely

    def test_p_does_not_know_before_pong(self, pingpong_universe):
        evaluator = KnowledgeEvaluator(pingpong_universe)
        b = has_received("q", "ping")
        # The configuration where the ping was received but no pong sent:
        for x in pingpong_universe:
            if b.fn(x) and not has_sent("q", "pong").fn(x):
                assert not evaluator.holds(Knows("p", b), x)


class TestConnectives:
    def test_boolean_semantics(self, pingpong_evaluator, pingpong_universe):
        evaluator = pingpong_evaluator
        b = has_received("q", "ping")
        everything = set(pingpong_universe)
        assert set(evaluator.extension(TRUE)) == everything
        assert set(evaluator.extension(FALSE)) == set()
        assert set(evaluator.extension(Not(b))) == everything - set(
            evaluator.extension(b)
        )
        assert set(evaluator.extension(b & TRUE)) == set(evaluator.extension(b))
        assert set(evaluator.extension(b | TRUE)) == everything
        assert evaluator.is_valid(Implies(FALSE, b))
        assert evaluator.is_valid(Iff(b, b))

    def test_sure_is_knows_or_knows_not(self, pingpong_evaluator):
        b = has_received("q", "ping")
        sure = Sure("p", b)
        expanded = sure.expand()
        assert set(pingpong_evaluator.extension(sure)) == set(
            pingpong_evaluator.extension(expanded)
        )


class TestGuardrails:
    def test_incomplete_universe_rejected(self):
        truncated = Universe(PingPongProtocol(rounds=5), max_events=3)
        assert not truncated.is_complete
        with pytest.raises(FormulaError):
            KnowledgeEvaluator(truncated)

    def test_incomplete_universe_opt_in(self):
        truncated = Universe(PingPongProtocol(rounds=5), max_events=3)
        evaluator = KnowledgeEvaluator(truncated, allow_incomplete=True)
        assert evaluator.extension(TRUE)

    def test_foreign_configuration_rejected(self, pingpong_evaluator):
        from repro.core.configuration import Configuration
        from repro.core.events import internal

        foreign = Configuration({"x": (internal("x"),)})
        with pytest.raises(Exception):
            pingpong_evaluator.holds(TRUE, foreign)

    def test_counterexamples(self, pingpong_evaluator):
        b = has_received("q", "ping")
        examples = pingpong_evaluator.counterexamples(b, limit=2)
        assert 0 < len(examples) <= 2
        for configuration in examples:
            assert not b.fn(configuration)

    def test_is_constant(self, pingpong_evaluator):
        assert pingpong_evaluator.is_constant(TRUE)
        assert pingpong_evaluator.is_constant(FALSE)
        assert not pingpong_evaluator.is_constant(has_received("q", "ping"))


class TestPartitions:
    def test_partition_covers_universe(self, pingpong_universe):
        evaluator = KnowledgeEvaluator(pingpong_universe)
        partition = evaluator.partition({"p"})
        total = sum(len(iso_class) for iso_class in partition)
        assert total == len(pingpong_universe)

    def test_partition_members_are_isomorphic(self, pingpong_universe):
        from repro.isomorphism.relation import isomorphic

        evaluator = KnowledgeEvaluator(pingpong_universe)
        for iso_class in evaluator.partition({"q"}):
            first = iso_class[0]
            for member in iso_class:
                assert isomorphic(first, member, {"q"})

    def test_event_count_atom(self, pingpong_evaluator, pingpong_universe):
        atom = event_count_at_least({"p", "q"}, 1)
        extension = pingpong_evaluator.extension(atom)
        assert len(extension) == len(pingpong_universe) - 1  # all but null
