"""§5(a) tracking impossibility (experiment E10)."""

import pytest

from repro.applications.tracking import analyse_tracking, tracking_error_window
from repro.protocols.toggle import ToggleProtocol
from repro.universe.explorer import Universe


class TestTrackingImpossibility:
    def test_observer_unsure_at_every_flip(self, toggle_universe, toggle_evaluator):
        report = analyse_tracking(toggle_universe, evaluator=toggle_evaluator)
        assert report.flip_transitions > 0
        assert report.observer_unsure_at_every_flip

    def test_owner_knows_observer_unsure(self, toggle_universe, toggle_evaluator):
        """The paper's necessary condition for changing a local predicate:
        the owner knows the observer is unsure at the point of change."""
        report = analyse_tracking(toggle_universe, evaluator=toggle_evaluator)
        assert report.owner_knows_observer_unsure

    def test_tracking_is_impossible(self, toggle_universe, toggle_evaluator):
        report = analyse_tracking(toggle_universe, evaluator=toggle_evaluator)
        assert report.tracking_impossible
        # ... although the observer IS sure somewhere (e.g. after the last
        # possible flip was reported), so the claim is not vacuous:
        assert report.observer_ever_sure

    def test_reportless_owner_keeps_observer_forever_unsure(self):
        universe = Universe(ToggleProtocol(max_flips=2, report=False))
        report = analyse_tracking(universe)
        assert report.observer_unsure_at_every_flip
        assert not report.observer_ever_sure

    def test_window_shape(self, toggle_universe, toggle_evaluator):
        """Early configurations: unsure; the fraction recovers only once
        all flips are over and reported."""
        window = tracking_error_window(toggle_universe, evaluator=toggle_evaluator)
        sizes = sorted(window)
        # Somewhere the observer is unsure:
        assert any(sure < total for sure, total in window.values())
        # At the maximal configurations everything has been reported:
        final_sure, final_total = window[sizes[-1]]
        assert final_sure == final_total

    def test_wrong_universe_rejected(self, pingpong_universe):
        with pytest.raises(TypeError):
            analyse_tracking(pingpong_universe)
        with pytest.raises(TypeError):
            tracking_error_window(pingpong_universe)
