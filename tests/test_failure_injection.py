"""Failure injection across the protocol corpus.

Crashes are composed with real protocols to verify both liveness
*failures* (crashes genuinely break detection/dissemination — silence is
not success) and the safety properties that must survive them.
"""

from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.protocols.dijkstra_scholten import DijkstraScholtenProtocol
from repro.protocols.termination import generate_workload
from repro.simulation.failures import CrashableProtocol, has_crashed
from repro.simulation.scheduler import BiasedScheduler, RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


class TestCrashedBroadcast:
    def test_crash_can_cut_the_line(self):
        """If the middle of a line crashes before forwarding, the far end
        never learns — across seeds, at least one run shows it."""
        names = ("a", "b", "c")
        base = BroadcastProtocol(line_topology(names), root="a")
        protocol = CrashableProtocol(base, crashable={"b"})
        cut_observed = False
        for seed in range(30):
            scheduler = BiasedScheduler(
                lambda event: getattr(event, "tag", None) == "crash",
                bias=0.5,
                seed=seed,
            )
            trace = simulate(protocol, scheduler)
            final = trace.final_configuration
            b_crashed = has_crashed(final.history("b"))
            c_knows = base.knows_fact("c", final.history("c"))
            if b_crashed and not c_knows:
                cut_observed = True
        assert cut_observed

    def test_crash_free_runs_still_disseminate(self):
        names = ("a", "b", "c")
        base = BroadcastProtocol(line_topology(names), root="a")
        protocol = CrashableProtocol(base, crashable={"b"})
        scheduler = BiasedScheduler(
            lambda event: getattr(event, "tag", None) != "crash",
            bias=1.0,
            seed=1,
        )
        trace = simulate(protocol, scheduler)
        final = trace.final_configuration
        if not has_crashed(final.history("b")):
            assert base.knows_fact("c", final.history("c"))


class TestCrashedTerminationDetection:
    def test_crash_can_prevent_detection(self):
        """Dijkstra–Scholten relies on every ack: a crashed worker can
        block the root's announcement forever."""
        workload = generate_workload(("a", "b", "c"), seed=1)
        base = DijkstraScholtenProtocol(workload)
        protocol = CrashableProtocol(base, crashable={"b", "c"})
        missed = False
        for seed in range(20):
            trace = simulate(protocol, RandomScheduler(seed))
            final = trace.final_configuration
            crashed = any(
                has_crashed(final.history(process)) for process in ("b", "c")
            )
            if crashed and not base.has_detected(final):
                missed = True
        assert missed, "crashes never prevented detection (suspicious)"

        # Crash-averse schedules still detect (and soundly).
        detected = False
        for seed in range(10):
            scheduler = BiasedScheduler(
                lambda event: getattr(event, "tag", None) != "crash",
                bias=1.0,
                seed=seed,
            )
            trace = simulate(protocol, scheduler)
            final = trace.final_configuration
            if base.has_detected(final):
                detected = True
                root_state = base.ds_state(
                    workload.root, final.history(workload.root)
                )
                assert root_state.deficit == 0
        assert detected, "no crash-averse run detected at all"

    def test_no_false_detection_under_crashes(self):
        """Crashes may block detection but never cause a false one."""
        workload = generate_workload(("a", "b", "c"), seed=3)
        base = DijkstraScholtenProtocol(workload)
        protocol = CrashableProtocol(base)
        for seed in range(10):
            trace = simulate(protocol, RandomScheduler(seed))
            from repro.core.configuration import Configuration

            for prefix in trace.computation.prefixes():
                configuration = Configuration.from_computation(prefix)
                if base.has_detected(configuration):
                    # At detection, every *sent* work message was acked;
                    # under crashes this still implies the workers were
                    # quiet at their last events.
                    state = base.ds_state(
                        workload.root, configuration.history(workload.root)
                    )
                    assert state.deficit == 0
                    break


class TestCrashUniverses:
    def test_crash_events_are_terminal_everywhere(self):
        base = BroadcastProtocol(line_topology(("a", "b")), root="a")
        universe = Universe(CrashableProtocol(base))
        for configuration in universe:
            for process in configuration.processes:
                history = configuration.history(process)
                for index, event in enumerate(history):
                    if getattr(event, "tag", None) == "crash":
                        assert index == len(history) - 1

    def test_crashable_universe_contains_the_crash_free_one(self):
        base = BroadcastProtocol(line_topology(("a", "b")), root="a")
        plain = Universe(base)
        crashable = Universe(CrashableProtocol(base))
        plain_set = set(plain)
        crashable_set = set(crashable)
        assert plain_set <= crashable_set
        assert len(crashable_set) > len(plain_set)
