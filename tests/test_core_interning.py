"""Interning, hashing and caching invariants of the Configuration fast path.

``extend()`` builds configurations through a no-validate constructor with
an incrementally maintained content hash and interns the result, so the
exploration hot path works with canonical instances.  Publicly
constructed configurations are separate objects but must agree with the
interned ones on equality and hash — these tests pin that contract.
"""

from types import MappingProxyType

import pytest

from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.errors import InvalidConfigurationError
from repro.core.events import internal, message_pair
from repro.protocols.pingpong import PingPongProtocol
from repro.universe.explorer import Universe


def events_pq():
    snd, rcv = message_pair("p", "q", "m")
    a = internal("p", tag="a")
    b = internal("q", tag="b")
    return snd, rcv, a, b


class TestInterning:
    def test_diamond_extensions_are_identical(self):
        """Reaching the same configuration along two interleavings must
        produce the same object, not merely an equal one."""
        a = internal("p", tag="a")
        b = internal("q", tag="b")
        via_ab = EMPTY_CONFIGURATION.extend(a).extend(b)
        via_ba = EMPTY_CONFIGURATION.extend(b).extend(a)
        assert via_ab is via_ba

    def test_extension_chain_is_deterministic(self):
        snd, rcv, a, b = events_pq()
        first = EMPTY_CONFIGURATION.extend(snd).extend(rcv).extend(a).extend(b)
        second = EMPTY_CONFIGURATION.extend(snd).extend(a).extend(rcv).extend(b)
        assert first is second

    def test_universe_configurations_are_canonical(self):
        """Universes dedup against their own dense-id table (not the
        global registry): one object per [D]-class within the universe,
        and rebuilding any member through interned ``extend`` resolves to
        the same dense id."""
        universe = Universe(PingPongProtocol(rounds=2))
        assert len(set(universe.configurations)) == len(universe)
        for configuration in universe:
            if len(configuration) == 0:
                continue
            rebuilt = EMPTY_CONFIGURATION
            for event in configuration.linearize():
                rebuilt = rebuilt.extend(event)
            assert rebuilt == configuration
            assert universe.config_id(rebuilt) == universe.config_id(
                configuration
            )

    def test_exploration_skips_the_intern_registry(self):
        """The kernel's batched child construction must not cycle the
        weak registry: exploring a universe leaves it unchanged."""
        from repro.core.configuration import registry_size

        before = registry_size()
        universe = Universe(PingPongProtocol(rounds=2))
        assert registry_size() == before
        assert len(universe) == 9


class TestEqualityAndHash:
    def test_public_constructor_round_trip(self):
        snd, rcv, a, b = events_pq()
        interned = EMPTY_CONFIGURATION.extend(snd).extend(rcv).extend(a)
        rebuilt = Configuration(interned.histories)
        assert rebuilt == interned
        assert interned == rebuilt
        assert hash(rebuilt) == hash(interned)
        assert rebuilt in {interned}
        assert interned in {rebuilt}

    def test_extend_agrees_with_public_constructor(self):
        snd, rcv, a, b = events_pq()
        extended = EMPTY_CONFIGURATION.extend(snd).extend(rcv)
        manual = Configuration({"p": (snd,), "q": (rcv,)})
        assert extended == manual
        assert hash(extended) == hash(manual)

    def test_hash_is_insertion_order_independent(self):
        a = internal("p", tag="a")
        b = internal("q", tag="b")
        forward = Configuration({"p": (a,), "q": (b,)})
        backward = Configuration({"q": (b,), "p": (a,)})
        assert forward == backward
        assert hash(forward) == hash(backward)

    def test_unequal_configurations_differ(self):
        a = internal("p", tag="a")
        other = internal("p", tag="other")
        assert Configuration({"p": (a,)}) != Configuration({"p": (other,)})
        assert Configuration({"p": (a,)}) != EMPTY_CONFIGURATION

    def test_public_constructor_still_validates(self):
        a = internal("p", tag="a")
        with pytest.raises(InvalidConfigurationError):
            Configuration({"q": (a,)})

    def test_extend_keys_event_under_its_own_process(self):
        a = internal("p", tag="a")
        extended = EMPTY_CONFIGURATION.extend(a)
        assert extended.history("p") == (a,)
        assert extended.processes == frozenset({"p"})


class TestCachedViews:
    def test_histories_is_read_only_and_cached(self):
        snd, rcv, a, b = events_pq()
        configuration = EMPTY_CONFIGURATION.extend(snd).extend(rcv)
        view = configuration.histories
        assert isinstance(view, MappingProxyType)
        assert configuration.histories is view  # cached, not re-allocated
        with pytest.raises(TypeError):
            view["p"] = ()
        assert view == {"p": (snd,), "q": (rcv,)}

    def test_projection_keys_are_memoised(self):
        snd, rcv, a, b = events_pq()
        configuration = EMPTY_CONFIGURATION.extend(snd).extend(rcv).extend(a)
        key = configuration.projection(frozenset({"p"}))
        assert configuration.projection(frozenset({"p"})) is key
        assert key == (("p", (snd, a)),)

    def test_projection_sorted_regardless_of_query_shape(self):
        snd, rcv, a, b = events_pq()
        configuration = EMPTY_CONFIGURATION.extend(snd).extend(rcv).extend(b)
        assert configuration.projection(("q", "p")) == (
            ("p", (snd,)),
            ("q", (rcv, b)),
        )

    def test_resent_message_value_keeps_set_semantics(self):
        """Re-sending a message value that was already received must not
        leave it in the in-flight cache: in_flight == sent - received as
        frozensets, regardless of how the caches were derived."""
        snd, rcv = message_pair("p", "q", "m")
        configuration = EMPTY_CONFIGURATION.extend(snd)
        assert configuration.in_flight_messages == {snd.message}
        configuration = configuration.extend(rcv)
        assert configuration.in_flight_messages == frozenset()
        resent = configuration.extend(snd)  # identical message value again
        fresh = Configuration(dict(resent.histories))
        assert resent.in_flight_messages == fresh.in_flight_messages == frozenset()
        assert resent.sent_messages == fresh.sent_messages
        assert resent.received_messages == fresh.received_messages

    def test_message_set_caches_match_fresh_computation(self):
        universe = Universe(PingPongProtocol(rounds=2))
        for configuration in universe:
            fresh = Configuration(dict(configuration.histories))
            assert configuration.sent_messages == fresh.sent_messages
            assert configuration.received_messages == fresh.received_messages
            assert configuration.in_flight_messages == fresh.in_flight_messages
