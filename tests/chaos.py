"""Whole-process crash chaos harness for checkpointed exploration.

The strongest durability claim the checkpoint subsystem makes is not
"survives a polite KeyboardInterrupt" but "survives the machine going
away mid-write".  This harness proves it the only honest way: it runs
``repro explore --checkpoint`` as a real subprocess, SIGKILLs it at
seeded layer targets (no cleanup handlers run), resumes it — possibly
under a different engine and a different interpreter hash seed — and
repeats until the exploration completes.  The surviving checkpoint must
reconstruct a universe bit-identical to an uninterrupted in-process run.

Torn writes are covered by the ``torn_save`` checkpoint fault: the
subprocess hard-exits (``os._exit``) between appending a segment and
publishing the manifest, leaving a genuinely torn on-disk state (an
orphan segment the next resume must discard).

Since checkpoint writes moved to a background thread, the same window
can also be hit *externally*: the ``stall_write`` fault holds the
writer open between segment append and manifest replace, the harness
watches the filesystem for the uncommitted segment to appear, and
SIGKILLs the whole process mid-background-write — no cooperation from
the dying process beyond the stall itself (``--stall-kill``).

Hostile storage is the third axis (``--disk-faults``): every crashed
attempt additionally carries a seeded *transient* storage fault
(``eio_write``/``eio_read``/``fsync_fail``/``slow_io``/``fd_exhaust``
via the fault-injecting file-ops shim), so SIGKILLs land on runs whose
checkpoint I/O is already retrying; the final completing run carries a
*permanent* ``enospc``, so it finishes with checkpointing degraded and
the survivor must resume from the last cleanly committed manifest.

Usable as a library (``tests/test_universe_chaos.py``) and as a CLI for
the CI smoke::

    python tests/chaos.py --size 5 --kills 3 --seed 7
    python tests/chaos.py --size 6 --kills 3 --workers 2 --seed 1
    python tests/chaos.py --size 6 --kills 4 --workers-schedule 1,2,1,3
    python tests/chaos.py --size 6 --kills 3 --store arena --seed 2
    python tests/chaos.py --size 5 --kills 3 --stall-kill --seed 4
    python tests/chaos.py --size 5 --kills 1 --disk-faults --seed 11
"""

from __future__ import annotations

import argparse
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.universe.checkpoint import inspect_checkpoint  # noqa: E402

TORN_SAVE_EXIT = 23  # os._exit status of the torn_save checkpoint fault
POLL_INTERVAL = 0.001  # star explorations save layers every few ms
DEFAULT_TIMEOUT = 180.0

# Storage fault kinds that are absorbed (retried or merely slowed) so a
# crashed attempt's checkpoint keeps advancing towards its kill target;
# the permanent enospc is reserved for the final completing run.
TRANSIENT_STORAGE_KINDS = (
    "eio_write",
    "eio_read",
    "fsync_fail",
    "slow_io",
    "fd_exhaust",
)


@dataclass
class ChaosAttempt:
    """One subprocess run: how it started and how it ended."""

    workers: int
    hash_seed: int
    outcome: str  # "sigkill" | "stall_kill" | "torn_save" | "complete"
    target_layer: int | None
    layers_on_disk: int
    returncode: int | None
    storage_faults: tuple[str, ...] = ()


@dataclass
class ChaosResult:
    """Outcome of a full kill/resume campaign."""

    size: int
    seed: int
    attempts: list[ChaosAttempt] = field(default_factory=list)
    completed: bool = False

    @property
    def kills(self) -> int:
        return sum(
            1 for a in self.attempts if a.outcome in ("sigkill", "stall_kill")
        )

    @property
    def stall_kills(self) -> int:
        return sum(1 for a in self.attempts if a.outcome == "stall_kill")

    @property
    def torn_saves(self) -> int:
        return sum(1 for a in self.attempts if a.outcome == "torn_save")

    def describe(self) -> str:
        lines = [
            f"chaos campaign: star n={self.size}, seed={self.seed}, "
            f"{len(self.attempts)} attempts "
            f"({self.kills} SIGKILLs, of which {self.stall_kills} "
            f"mid-background-write, {self.torn_saves} torn saves)"
        ]
        for i, a in enumerate(self.attempts):
            where = (
                f"targeting layer {a.target_layer}"
                if a.target_layer is not None
                else "running to completion"
            )
            storage = (
                f" storage={','.join(a.storage_faults)}"
                if a.storage_faults
                else ""
            )
            lines.append(
                f"  attempt {i}: workers={a.workers} "
                f"PYTHONHASHSEED={a.hash_seed} {where}{storage} -> "
                f"{a.outcome} "
                f"(rc={a.returncode}, {a.layers_on_disk} layers on disk)"
            )
        lines.append(f"  completed: {self.completed}")
        return "\n".join(lines)


def explore_command(
    path: pathlib.Path,
    size: int,
    workers: int,
    fault_specs: tuple[str, ...] = (),
    store: str = "objects",
    spill_dir: pathlib.Path | None = None,
) -> list[str]:
    """The exact ``repro explore`` invocation the campaign crashes."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "explore",
        "broadcast",
        "--topology",
        "star",
        "--size",
        str(size),
        "--checkpoint",
        str(path),
        "--checkpoint-every",
        "1",
    ]
    if workers > 1:
        cmd += ["--workers", str(workers)]
    if store != "objects":
        cmd += ["--store", store]
    if spill_dir is not None:
        cmd += ["--spill-dir", str(spill_dir)]
    for spec in fault_specs:
        cmd += ["--fault", spec]
    return cmd


def _subprocess_env(hash_seed: int) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    # Every attempt runs in a different hash domain: resume must not
    # depend on the writer's interpreter hash seed.
    env["PYTHONHASHSEED"] = str(hash_seed)
    return env


def layers_on_disk(path: pathlib.Path) -> int:
    """Current layer count per the manifest (0 if absent/unreadable)."""
    report = inspect_checkpoint(path, verify_segments=False)
    if not report.get("exists") or report.get("error"):
        return 0
    return int(report.get("layers") or 0)


def orphan_on_disk(path: pathlib.Path) -> bool:
    """True when a segment file exists that the manifest never
    committed — i.e. some writer is (or died) between segment append
    and manifest replace."""
    report = inspect_checkpoint(path, verify_segments=False)
    return bool(report.get("orphans"))


def _run_and_kill(
    cmd: list[str],
    path: pathlib.Path,
    target_layer: int | None,
    hash_seed: int,
    timeout: float,
    kill_on_orphan: bool = False,
) -> tuple[str, int | None]:
    """Run the explorer; SIGKILL it once the checkpoint reaches the
    target layer — or, with ``kill_on_orphan``, the instant an
    uncommitted segment appears on disk (the stalled background writer
    sitting between append and manifest commit).  Returns (outcome,
    returncode)."""
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_subprocess_env(hash_seed),
    )
    deadline = time.monotonic() + timeout
    try:
        while proc.poll() is None:
            if time.monotonic() > deadline:
                proc.kill()
                proc.wait()
                raise TimeoutError(f"chaos subprocess exceeded {timeout}s: {cmd}")
            if kill_on_orphan and orphan_on_disk(path):
                # The writer is inside the append->commit window: this
                # SIGKILL lands mid-background-write by construction.
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                return "stall_kill", proc.returncode
            if target_layer is not None and layers_on_disk(path) >= target_layer:
                # No warning, no cleanup: the process is simply gone.
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                return "sigkill", proc.returncode
            time.sleep(POLL_INTERVAL)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if proc.returncode == TORN_SAVE_EXIT:
        return "torn_save", proc.returncode
    if proc.returncode == 0:
        return "complete", proc.returncode
    return f"error:{proc.returncode}", proc.returncode


def run_campaign(
    path: pathlib.Path,
    size: int = 6,
    kills: int = 3,
    seed: int = 0,
    workers_schedule: tuple[int, ...] = (1,),
    torn_save: bool = True,
    stall_kill: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
    store: str = "objects",
    spill_dir: pathlib.Path | None = None,
    disk_faults: bool = False,
) -> ChaosResult:
    """Crash/resume until the exploration completes.

    ``kills`` counts forced deaths before the final clean run; when
    ``torn_save`` is true one death is a mid-save hard exit (torn
    write) rather than an external SIGKILL.  ``stall_kill`` makes the
    campaign's *first* death an external SIGKILL landed while the
    background checkpoint writer is provably between segment append and
    manifest replace (held open by the ``stall_write`` fault; first so
    the fresh file guarantees the watched-for orphan is ours).
    ``workers_schedule`` cycles across attempts, so mixed schedules
    exercise kernel<->sharded resume of the same file.
    ``store``/``spill_dir`` select the configuration store of every
    crashed attempt (the arena with spill enabled must survive SIGKILL
    mid-spill exactly like the object store — spilled chunks are a
    cache, never checkpoint state).

    ``disk_faults`` layers hostile storage on top: every crashed
    attempt carries one seeded transient storage fault (retried or
    absorbed, so the checkpoint keeps advancing into the kill window)
    and the final completing run carries a permanent ``enospc``, which
    degrades checkpointing loudly but must not stop the run — nor
    invalidate the last committed manifest the bit-identity check then
    resumes from.
    """
    rng = random.Random(seed)
    result = ChaosResult(size=size, seed=seed)
    path = pathlib.Path(path)

    deaths = 0
    attempt = 0
    while True:
        workers = workers_schedule[attempt % len(workers_schedule)]
        hash_seed = rng.randrange(1, 2**31)
        faults: tuple[str, ...] = ()
        storage_faults: tuple[str, ...] = ()
        target_layer: int | None = None
        kill_on_orphan = False
        if disk_faults:
            base = layers_on_disk(path)
            if deaths < kills:
                kind = TRANSIENT_STORAGE_KINDS[
                    rng.randrange(len(TRANSIENT_STORAGE_KINDS))
                ]
                layer = base + rng.randint(0, 2)
                spec = (
                    f"{kind}@{layer}~0.05"
                    if kind == "slow_io"
                    else f"{kind}@{layer}"
                )
                storage_faults = (spec,)
            else:
                # The completing run finishes on a full disk: one loud
                # degradation, exploration unharmed, last manifest clean.
                storage_faults = (f"enospc@{base + rng.randint(1, 2)}",)
        if deaths < kills:
            # Aim a little past whatever is already on disk so every
            # death forfeits real progress.  A star-n broadcast universe
            # has exactly 2n layers; clamping the target below that
            # guarantees the run cannot complete before its kill lands.
            base = layers_on_disk(path)
            target_layer = min(base + rng.randint(1, 3), 2 * size - 2)
            if stall_kill and deaths == 0:
                # Hold the append->commit window open long enough for
                # the 1 ms orphan poll to land a kill inside it.
                faults = (f"stall_write@{target_layer}~2.0",)
                target_layer = None
                kill_on_orphan = True
            elif torn_save and deaths == (1 if stall_kill else 0):
                faults = (f"torn_save@{target_layer}",)
                target_layer = None  # the fault itself is the killer
        outcome, returncode = _run_and_kill(
            explore_command(
                path,
                size,
                workers,
                faults + storage_faults,
                store=store,
                spill_dir=spill_dir,
            ),
            path,
            target_layer,
            hash_seed,
            timeout,
            kill_on_orphan=kill_on_orphan,
        )
        result.attempts.append(
            ChaosAttempt(
                workers=workers,
                hash_seed=hash_seed,
                outcome=outcome,
                target_layer=target_layer,
                layers_on_disk=layers_on_disk(path),
                returncode=returncode,
                storage_faults=storage_faults,
            )
        )
        if outcome in ("sigkill", "stall_kill", "torn_save"):
            deaths += 1
        elif outcome == "complete":
            result.completed = True
            return result
        else:
            raise RuntimeError(
                f"chaos subprocess failed unexpectedly ({outcome}):\n"
                + result.describe()
            )
        attempt += 1
        if attempt > kills * 6 + 10:
            raise RuntimeError(
                "chaos campaign failed to converge:\n" + result.describe()
            )


def verify_bit_identical(
    path: pathlib.Path, size: int, store: str = "objects"
) -> int:
    """Resume the survivor in-process and compare it with an
    uninterrupted run; returns the universe size.

    The clean reference always uses the object store, so an arena
    campaign's final comparison is also a cross-store identity check.
    """
    from repro.cli import broadcast_protocol
    from repro.universe.explorer import Universe

    single = Universe(broadcast_protocol("star", size))
    survivor = Universe(
        broadcast_protocol("star", size), checkpoint=path, store=store
    )
    if not survivor.is_complete:
        raise AssertionError("surviving checkpoint is not complete")
    if len(survivor) != len(single):
        raise AssertionError(
            f"survivor has {len(survivor)} configurations, "
            f"uninterrupted run has {len(single)}"
        )
    if survivor._configurations != single._configurations:
        raise AssertionError("survivor differs from clean run in dense ids")
    for attr in ("_succ_offsets", "_succ_ids", "_ids_by_hash"):
        if getattr(survivor, attr) != getattr(single, attr):
            raise AssertionError(f"survivor differs from clean run in {attr}")
    return len(survivor)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="crash a checkpointed exploration until it gives up or wins"
    )
    parser.add_argument("--size", type=int, default=6, help="star protocol size")
    parser.add_argument("--kills", type=int, default=3, help="forced deaths")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for every attempt (shorthand for a flat schedule)",
    )
    parser.add_argument(
        "--workers-schedule",
        type=str,
        default=None,
        help="comma-separated worker counts cycled across attempts, e.g. 1,2,1",
    )
    parser.add_argument(
        "--no-torn-save",
        action="store_true",
        help="use only external SIGKILLs (skip the mid-save torn write)",
    )
    parser.add_argument(
        "--stall-kill",
        action="store_true",
        help="make the first death a SIGKILL landed while the background "
        "checkpoint writer is between segment append and manifest commit "
        "(held open by the stall_write fault)",
    )
    parser.add_argument(
        "--disk-faults",
        action="store_true",
        help="layer seeded storage faults on top of the kills: crashed "
        "attempts get one transient fault (eio_write/eio_read/"
        "fsync_fail/slow_io/fd_exhaust), the final completing run gets "
        "a permanent enospc (checkpointing degrades loudly, the last "
        "committed manifest must still verify clean)",
    )
    parser.add_argument(
        "--keep-checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help="write the checkpoint here and keep it (default: temp dir)",
    )
    parser.add_argument(
        "--store",
        choices=("objects", "arena"),
        default="objects",
        help="configuration store for every crashed attempt (the final "
        "bit-identity check always compares against an object-store run)",
    )
    parser.add_argument(
        "--spill-dir",
        type=str,
        default=None,
        metavar="PATH",
        help="arena cold-chunk spill directory (default with --store "
        "arena: a directory inside the campaign's temp dir, so kills "
        "land while spill files exist)",
    )
    args = parser.parse_args(argv)

    if args.workers_schedule:
        schedule = tuple(int(w) for w in args.workers_schedule.split(","))
    else:
        schedule = (args.workers,)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = (
            pathlib.Path(args.keep_checkpoint)
            if args.keep_checkpoint
            else pathlib.Path(tmp) / "chaos.ckpt"
        )
        if args.spill_dir is not None:
            spill_dir = pathlib.Path(args.spill_dir)
        elif args.store == "arena":
            spill_dir = pathlib.Path(tmp) / "spill"
            spill_dir.mkdir()
        else:
            spill_dir = None
        result = run_campaign(
            path,
            size=args.size,
            kills=args.kills,
            seed=args.seed,
            workers_schedule=schedule,
            torn_save=not args.no_torn_save,
            stall_kill=args.stall_kill,
            store=args.store,
            spill_dir=spill_dir,
            disk_faults=args.disk_faults,
        )
        print(result.describe())
        if args.disk_faults:
            injected = sum(
                len(a.storage_faults) for a in result.attempts
            )
            if not injected:
                raise RuntimeError(
                    "no storage fault was injected:\n" + result.describe()
                )
            print(f"storage faults injected: {injected}")
        if args.stall_kill and not result.stall_kills:
            raise RuntimeError(
                "no kill landed inside the background-write window:\n"
                + result.describe()
            )
        count = verify_bit_identical(path, args.size, store=args.store)
        print(f"survivor is bit-identical to an uninterrupted run ({count} configurations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
