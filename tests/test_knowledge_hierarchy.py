"""The everyone-knows hierarchy and knowledge depth."""

import pytest

from repro.knowledge.formula import TRUE
from repro.knowledge.hierarchy import (
    check_hierarchy_converges_to_common_knowledge,
    depth_table,
    everyone_knows,
    hierarchy_extensions,
    hierarchy_profile,
    knowledge_depth,
)
from repro.knowledge.predicates import did_internal, has_received


class TestHierarchy:
    def test_profile_is_monotone_decreasing(self, broadcast_evaluator):
        fact = did_internal("a", "learn")
        profile = hierarchy_profile(broadcast_evaluator, {"a", "b", "c"}, fact)
        assert profile == sorted(profile, reverse=True)

    def test_contingent_fact_dies_out(self, broadcast_evaluator):
        """E^k of a contingent fact reaches the empty fixed point — the
        quantitative face of 'common knowledge cannot be gained'."""
        fact = did_internal("a", "learn")
        layers = hierarchy_extensions(broadcast_evaluator, {"a", "b", "c"}, fact)
        assert len(layers[0]) > 0
        assert len(layers[-1]) == 0

    def test_depth_counts_strict_shrinks(self, broadcast_evaluator):
        fact = did_internal("a", "learn")
        depth = knowledge_depth(broadcast_evaluator, {"a", "b", "c"}, fact)
        assert depth >= 1

    def test_constant_true_has_depth_zero(self, broadcast_evaluator):
        depth = knowledge_depth(broadcast_evaluator, {"a", "b", "c"}, TRUE)
        assert depth == 0
        profile = hierarchy_profile(broadcast_evaluator, {"a", "b", "c"}, TRUE)
        assert len(set(profile)) == 1

    def test_fixed_point_is_common_knowledge(self, broadcast_evaluator):
        for formula in (TRUE, did_internal("a", "learn"), has_received("c", "fact")):
            assert check_hierarchy_converges_to_common_knowledge(
                broadcast_evaluator, {"a", "b", "c"}, formula
            )

    def test_fixed_point_on_pingpong(self, pingpong_evaluator):
        assert check_hierarchy_converges_to_common_knowledge(
            pingpong_evaluator, {"p", "q"}, has_received("q", "ping")
        )

    def test_depth_table_shape(self, broadcast_evaluator):
        rows = depth_table(
            broadcast_evaluator,
            {"a", "b", "c"},
            [("fact", did_internal("a", "learn")), ("true", TRUE)],
        )
        assert len(rows) == 2
        name, profile, depth = rows[0]
        assert name == "fact" and depth >= 1 and profile[0] > profile[-1]

    def test_everyone_knows_needs_processes(self):
        with pytest.raises(ValueError):
            everyone_knows(frozenset(), TRUE)

    def test_everyone_knows_implies_each_knows(self, pingpong_evaluator):
        from repro.knowledge.formula import Implies, Knows

        b = has_received("q", "ping")
        e_formula = everyone_knows({"p", "q"}, b)
        for process in ("p", "q"):
            assert pingpong_evaluator.is_valid(
                Implies(e_formula, Knows(process, b))
            )
