"""The one-shot verification report."""

import pytest

from repro.report import ReportItem, VerificationReport, verification_report


@pytest.fixture(scope="module")
def report():
    return verification_report()


class TestVerificationReport:
    def test_all_claims_verified(self, report):
        failing = [item for item in report.items if not item.verdict]
        assert report.all_hold, failing

    def test_covers_every_section(self, report):
        experiments = {item.experiment for item in report.items}
        # Sections 3, 4, 5 and 6 are all represented.
        assert {"E2", "E3", "E5"} <= experiments  # §3
        assert {"E6", "E7", "E8", "E9"} <= experiments  # §4
        assert {"E10", "E11", "E12"} <= experiments  # §5
        assert "E14" in experiments  # §6

    def test_markdown_rendering(self, report):
        markdown = report.to_markdown()
        assert markdown.startswith("# Verification report")
        assert "ALL CLAIMS VERIFIED" in markdown
        assert markdown.count("✓") == len(report.items)
        assert "✗" not in markdown

    def test_failure_rendering(self):
        failing = VerificationReport(
            items=[ReportItem("EX", "a false claim", False, "details")]
        )
        markdown = failing.to_markdown()
        assert not failing.all_hold
        assert "FAILURES FOUND" in markdown
        assert "✗ FAIL" in markdown

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        assert "ALL CLAIMS VERIFIED" in capsys.readouterr().out

    def test_cli_lists_e14(self, capsys):
        from repro.cli import main

        main(["experiments"])
        assert "E14" in capsys.readouterr().out
