"""Broadcast protocol: knowledge dissemination along topologies."""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows
from repro.protocols.broadcast import (
    BroadcastProtocol,
    fact_established_atom,
    fact_known_atom,
    line_topology,
    ring_topology,
    star_topology,
)
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate


class TestTopologies:
    def test_line(self):
        topology = line_topology(("a", "b", "c"))
        assert topology["a"] == ("b",)
        assert topology["b"] == ("a", "c")
        assert topology["c"] == ("b",)

    def test_star(self):
        topology = star_topology("hub", ("x", "y"))
        assert set(topology["hub"]) == {"x", "y"}
        assert topology["x"] == ("hub",)

    def test_ring(self):
        topology = ring_topology(("a", "b", "c"))
        assert topology["a"] == ("c", "b")
        assert topology["b"] == ("a", "c")

    def test_root_must_exist(self):
        with pytest.raises(ValueError):
            BroadcastProtocol(line_topology(("a", "b")), root="zebra")


class TestDissemination:
    def test_everyone_learns_in_full_runs(self):
        names = tuple(f"n{i}" for i in range(5))
        protocol = BroadcastProtocol(line_topology(names), root=names[0])
        trace = simulate(protocol, RandomScheduler(2))
        final = trace.final_configuration
        for name in names:
            assert protocol.knows_fact(name, final.history(name))

    def test_star_floods_from_hub(self):
        protocol = BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")
        trace = simulate(protocol, RandomScheduler(0))
        assert trace.count_messages("fact") == 3

    def test_learning_is_monotone(self, broadcast_universe):
        protocol = broadcast_universe.protocol
        for configuration in broadcast_universe:
            for successor in broadcast_universe.successors(configuration):
                for process in protocol.processes:
                    before = protocol.knows_fact(
                        process, configuration.history(process)
                    )
                    after = protocol.knows_fact(process, successor.history(process))
                    assert after or not before


class TestKnowledgeStructure:
    def test_knowing_the_fact_is_knowing_the_atom(self, broadcast_universe):
        """Once c receives the fact, c *knows* (epistemically) the root
        learnt it — receipt implies knowledge through the chain."""
        evaluator = KnowledgeEvaluator(broadcast_universe)
        protocol = broadcast_universe.protocol
        established = fact_established_atom(protocol)
        c_has_it = fact_known_atom(protocol, "c")
        for configuration in evaluator.extension(c_has_it):
            assert evaluator.holds(Knows("c", established), configuration)

    def test_no_knowledge_without_receipt(self, broadcast_universe):
        evaluator = KnowledgeEvaluator(broadcast_universe)
        protocol = broadcast_universe.protocol
        established = fact_established_atom(protocol)
        c_has_it = fact_known_atom(protocol, "c")
        for configuration in broadcast_universe:
            if not c_has_it.fn(configuration):
                assert not evaluator.holds(Knows("c", established), configuration)
