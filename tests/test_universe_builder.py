"""Hand-built computation families (Figure 3-1) and builder helpers."""

from repro.core.configuration import Configuration
from repro.core.validation import is_system_computation
from repro.universe.builder import (
    configuration_from_events,
    figure_3_1_computations,
    figure_3_1_universe,
)


class TestFigure31Family:
    def test_four_computations(self):
        comps = figure_3_1_computations()
        assert set(comps) == {"x", "y", "z", "w"}
        for computation in comps.values():
            assert len(computation) == 2
            assert is_system_computation(computation)

    def test_the_stated_relations(self):
        comps = figure_3_1_computations()
        # x and z are distinct permutations.
        assert comps["x"] != comps["z"]
        assert comps["x"].is_permutation_of(comps["z"])
        # x agrees with y on p only.
        assert comps["x"].projection("p") == comps["y"].projection("p")
        assert comps["x"].projection("q") != comps["y"].projection("q")
        # w agrees with z on q only.
        assert comps["z"].projection("q") == comps["w"].projection("q")
        assert comps["z"].projection("p") != comps["w"].projection("p")

    def test_universe_closure(self):
        universe = figure_3_1_universe()
        assert len(universe) == 8
        assert universe.is_complete
        # The three distinct [D]-classes are present.
        comps = figure_3_1_computations()
        for name in ("x", "y", "w"):
            assert Configuration.from_computation(comps[name]) in universe

    def test_dot_export(self):
        from repro.isomorphism.diagram import IsomorphismDiagram

        comps = figure_3_1_computations()
        diagram = IsomorphismDiagram(
            comps.values(), {"p", "q"}, names={k: v for k, v in comps.items()}
        )
        dot = diagram.to_dot()
        assert dot.startswith("graph isomorphism {")
        assert '"x" -- "y" [label="{p}"];' in dot
        assert "self" not in dot  # self loops omitted
        with_loops = diagram.to_dot(include_self_loops=True)
        assert '"x" -- "x"' in with_loops


class TestHelpers:
    def test_configuration_from_events(self):
        from repro.core.events import internal, message_pair

        snd, rcv = message_pair("p", "q", "m")
        configuration = configuration_from_events(snd, rcv, internal("p"))
        assert configuration.count_on("p") == 2
        assert configuration.count_on("q") == 1
