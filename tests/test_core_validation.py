"""Unit tests for system-computation validity (§2, condition 2)."""

import pytest

from repro.core.computation import NULL, computation_of
from repro.core.configuration import Configuration
from repro.core.errors import InvalidComputationError, InvalidConfigurationError
from repro.core.events import internal, message_pair, send
from repro.core.validation import (
    check_configuration,
    check_system_computation,
    find_computation_defect,
    find_configuration_defect,
    is_system_computation,
    is_valid_configuration,
)


class TestComputationValidity:
    def test_null_is_valid(self):
        assert is_system_computation(NULL)

    def test_send_then_receive_is_valid(self):
        snd, rcv = message_pair("p", "q", "m")
        assert is_system_computation(computation_of(snd, rcv))

    def test_receive_before_send_is_invalid(self):
        snd, rcv = message_pair("p", "q", "m")
        defect = find_computation_defect(computation_of(rcv, snd))
        assert defect is not None and "no earlier corresponding send" in defect

    def test_receive_without_send_is_invalid(self):
        _, rcv = message_pair("p", "q", "m")
        assert not is_system_computation(computation_of(rcv))

    def test_duplicate_event_is_invalid(self):
        a = internal("p")
        defect = find_computation_defect(computation_of(a, a))
        assert defect is not None and "more than once" in defect

    def test_duplicate_send_is_invalid(self):
        snd, _ = message_pair("p", "q", "m")
        # Two sends of the same message cannot even be built as distinct
        # events, so the duplicate is caught as a repeated event.
        assert not is_system_computation(computation_of(snd, snd))

    def test_check_raises_with_description(self):
        _, rcv = message_pair("p", "q", "m")
        with pytest.raises(InvalidComputationError):
            check_system_computation(computation_of(rcv))

    def test_check_returns_valid_computation(self):
        snd, rcv = message_pair("p", "q", "m")
        z = computation_of(snd, rcv)
        assert check_system_computation(z) is z

    def test_prefix_closure(self):
        """The paper asks the reader to show prefix closure; we test it."""
        snd, rcv = message_pair("p", "q", "m")
        a = internal("q", tag="a")
        z = computation_of(snd, rcv, a)
        for prefix in z.prefixes():
            assert is_system_computation(prefix)


class TestConfigurationValidity:
    def test_valid_configuration(self):
        snd, rcv = message_pair("p", "q", "m")
        configuration = Configuration({"p": (snd,), "q": (rcv,)})
        assert is_valid_configuration(configuration)
        assert check_configuration(configuration) is configuration

    def test_receive_without_send(self):
        _, rcv = message_pair("p", "q", "m")
        defect = find_configuration_defect(Configuration({"q": (rcv,)}))
        assert defect is not None and "never sent" in defect

    def test_cyclic_configuration(self):
        snd1, rcv1 = message_pair("p", "q", "m1")
        snd2, rcv2 = message_pair("q", "p", "m2")
        cyclic = Configuration({"p": (rcv2, snd1), "q": (rcv1, snd2)})
        defect = find_configuration_defect(cyclic)
        assert defect is not None and "linearization" in defect
        with pytest.raises(InvalidConfigurationError):
            check_configuration(cyclic)

    def test_every_explored_configuration_is_valid(self, pingpong_universe):
        for configuration in pingpong_universe:
            assert is_valid_configuration(configuration)
