"""Unit tests for the simulator, schedulers, traces, failures, FIFO."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SimulationError
from repro.core.validation import is_system_computation
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.simulation.failures import CrashableProtocol, crashed_atom, has_crashed
from repro.simulation.network import FifoProtocol, fifo_frontier
from repro.simulation.scheduler import (
    BiasedScheduler,
    EagerReceiveScheduler,
    FifoScheduler,
    LazyReceiveScheduler,
    RandomScheduler,
)
from repro.simulation.simulator import Simulator, simulate
from repro.universe.explorer import Universe


class TestSimulator:
    def test_runs_to_quiescence(self):
        trace = simulate(PingPongProtocol(rounds=3), RandomScheduler(1))
        assert trace.summary()["undelivered"] == 0
        assert trace.count_messages("ping") == 3
        assert trace.count_messages("pong") == 3

    def test_traces_are_valid_system_computations(self):
        for seed in range(5):
            trace = simulate(PingPongProtocol(rounds=2), RandomScheduler(seed))
            assert is_system_computation(trace.computation)

    def test_reproducible(self):
        first = simulate(PingPongProtocol(rounds=3), RandomScheduler(42))
        second = simulate(PingPongProtocol(rounds=3), RandomScheduler(42))
        assert first.computation == second.computation

    def test_different_seeds_may_differ(self):
        ring = tuple(f"n{i}" for i in range(5))
        runs = {
            simulate(ChangRobertsProtocol(ring), RandomScheduler(seed)).computation
            for seed in range(8)
        }
        assert len(runs) > 1

    def test_step_bound_raises(self):
        with pytest.raises(SimulationError):
            simulate(PingPongProtocol(rounds=100), RandomScheduler(0), max_steps=5)

    def test_until_predicate_stops_early(self):
        protocol = PingPongProtocol(rounds=5)
        trace = simulate(
            protocol,
            RandomScheduler(0),
            until=lambda configuration: len(configuration) >= 3,
        )
        assert len(trace.computation) == 3

    def test_step_api(self):
        simulator = Simulator(PingPongProtocol(rounds=1))
        events = []
        while True:
            event = simulator.step()
            if event is None:
                break
            events.append(event)
        assert len(events) == 4
        simulator.reset()
        assert len(simulator.configuration) == 0

    def test_trace_runs_through_universe_members(self, pingpong_universe):
        """Every simulated prefix is a reachable configuration."""
        trace = simulate(PingPongProtocol(rounds=2), RandomScheduler(9))
        for configuration in trace.configurations():
            assert configuration in pingpong_universe


class TestSchedulers:
    def test_fifo_scheduler_deterministic(self):
        first = simulate(PingPongProtocol(rounds=2), FifoScheduler())
        second = simulate(PingPongProtocol(rounds=2), FifoScheduler())
        assert first.computation == second.computation

    def test_eager_prefers_receives(self):
        trace = simulate(PingPongProtocol(rounds=2), EagerReceiveScheduler())
        events = list(trace.computation)
        # Immediately after every send, the matching receive fires.
        for index, event in enumerate(events[:-1]):
            if event.is_send:
                assert events[index + 1].is_receive

    def test_lazy_defers_receives(self):
        ring = tuple(f"n{i}" for i in range(4))
        trace = simulate(ChangRobertsProtocol(ring), LazyReceiveScheduler())
        events = list(trace.computation)
        first_receive = next(i for i, e in enumerate(events) if e.is_receive)
        sends_before = sum(1 for e in events[:first_receive] if e.is_send)
        assert sends_before == len(ring)  # everyone injected first

    def test_biased_scheduler_validates_bias(self):
        with pytest.raises(ValueError):
            BiasedScheduler(lambda event: True, bias=2.0)

    def test_biased_scheduler_prefers_predicate(self):
        trace = simulate(
            PingPongProtocol(rounds=2),
            BiasedScheduler(lambda event: event.is_receive, bias=1.0, seed=3),
        )
        assert trace.summary()["undelivered"] == 0


class TestCrashFailures:
    def test_crash_stops_a_process(self):
        protocol = CrashableProtocol(PingPongProtocol(rounds=3), crashable={"q"})
        universe = Universe(protocol)
        for configuration in universe:
            history = configuration.history("q")
            if has_crashed(history):
                # No event after the crash.
                crash_positions = [
                    index
                    for index, event in enumerate(history)
                    if getattr(event, "tag", None) == "crash"
                ]
                assert crash_positions[-1] == len(history) - 1

    def test_crashed_atom(self):
        protocol = CrashableProtocol(PingPongProtocol(rounds=1), crashable={"q"})
        universe = Universe(protocol)
        atom = crashed_atom("q")
        crashed_configs = [c for c in universe if atom.fn(c)]
        assert crashed_configs

    def test_crashable_must_be_members(self):
        with pytest.raises(ValueError):
            CrashableProtocol(PingPongProtocol(), crashable={"zebra"})


class TestFifo:
    def test_frontier_is_oldest_per_channel(self):
        from repro.core.events import message_pair

        s0, r0 = message_pair("p", "q", "m", seq=0)
        s1, r1 = message_pair("p", "q", "m", seq=1)
        configuration = Configuration({"p": (s0, s1)})
        assert fifo_frontier(configuration) == {s0.message}

    def test_fifo_protocol_restricts_receives(self):
        from repro.core.events import message_pair
        from repro.core.configuration import EMPTY_CONFIGURATION

        class TwoSends(PingPongProtocol):
            pass

        base = PingPongProtocol(rounds=2)
        fifo = FifoProtocol(base)
        # Drive two pings out without any receive via direct enabling:
        configuration = EMPTY_CONFIGURATION
        sends = 0
        while sends < 1:
            events = [e for e in fifo.enabled_events(configuration) if e.is_send]
            if not events:
                break
            configuration = configuration.extend(events[0])
            sends += 1
        receives = [
            e for e in fifo.enabled_events(configuration) if e.is_receive
        ]
        assert len(receives) <= 1


class TestNonInterningStep:
    """`Simulator.step` builds configurations outside the intern registry
    (a 10^6-step run must not cycle the weak registry once per step);
    trace semantics have to be bit-identical to the interned path."""

    def test_trace_identical_to_interned_replay(self):
        from repro.core.configuration import EMPTY_CONFIGURATION
        from repro.protocols.token_bus import TokenBusProtocol

        protocol = TokenBusProtocol(max_hops=6)
        trace = simulate(protocol, RandomScheduler(7))
        replayed = EMPTY_CONFIGURATION
        for event in trace.computation.events:
            replayed = replayed.extend(event)  # interned reference path
        final = Simulator(protocol, RandomScheduler(7))
        result = final.run()
        assert result.computation.events == trace.computation.events
        assert final.configuration == replayed
        assert hash(final.configuration) == hash(replayed)

    def test_step_leaves_the_registry_alone(self):
        import gc

        from repro.core.configuration import registry_size
        from repro.protocols.token_bus import TokenBusProtocol

        simulator = Simulator(TokenBusProtocol(max_hops=8), RandomScheduler(3))
        # The registry is weak: a generational collection landing inside
        # the loop can expire members interned by *earlier tests* and
        # shrink the count for reasons unrelated to step().  Collect
        # first and pause GC so the equality below measures only what
        # step() does (unregistered construction allocates no cycles).
        gc.collect()
        before = registry_size()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            steps = 0
            while simulator.step() is not None:
                steps += 1
        finally:
            if gc_was_enabled:
                gc.enable()
        assert steps > 0
        assert registry_size() == before

    def test_stepwise_configurations_compare_like_interned_ones(self):
        from repro.core.configuration import Configuration
        from repro.protocols.pingpong import PingPongProtocol

        simulator = Simulator(PingPongProtocol(rounds=2), RandomScheduler(0))
        while simulator.step() is not None:
            configuration = simulator.configuration
            rebuilt = Configuration(dict(configuration.histories))
            assert configuration == rebuilt
            assert hash(configuration) == hash(rebuilt)
