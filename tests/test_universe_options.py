"""The grouped ExplorationOptions API and its legacy-kwarg shim.

Contract (ISSUE 9): both calling styles run through one code path
inside the explorer, so a ``Universe`` built from legacy kwargs and one
built from the equivalent ``ExplorationOptions`` are the same universe
— same dense ids, same CSR arrays, same ``recovery_log`` under fault
injection.  A ``DeprecationWarning`` fires only on a *conflicting*
double specification (and the legacy kwarg wins); the dataclasses are
picklable leaves so an options object travels intact through both
``fork`` and ``spawn`` worker starts.
"""

import multiprocessing
import pickle
import warnings

import pytest

from repro.core.errors import UniverseError
from repro.universe.explorer import Universe
from repro.universe.faults import FaultPlan
from repro.universe.options import (
    CheckpointPolicy,
    ExplorationOptions,
    Limits,
    ResourceBudget,
    Sharding,
    options_from_args,
)
from repro.universe.sharded import SupervisionPolicy
from test_universe_sharded import assert_bit_identical, star_protocol

FAST = SupervisionPolicy(heartbeat_timeout=5.0, poll_interval=0.02)


def no_warnings():
    """Error on any DeprecationWarning inside the block."""
    ctx = warnings.catch_warnings()
    warnings.simplefilter("error", DeprecationWarning)
    return ctx


class TestCallStyleMatrix:
    """One protocol through every calling style: identical universes."""

    def build(self, style):
        protocol = star_protocol(5)
        if style == "legacy":
            return Universe(
                protocol, max_configurations=2_000, on_limit="raise"
            )
        if style == "options":
            return Universe(
                protocol,
                options=ExplorationOptions(
                    limits=Limits(max_configurations=2_000, on_limit="raise")
                ),
            )
        if style == "mixed":
            # Options object plus a legacy kwarg filling a field the
            # options left at its default: no conflict, no warning.
            return Universe(
                protocol,
                max_configurations=2_000,
                options=ExplorationOptions(limits=Limits(on_limit="raise")),
            )
        raise AssertionError(style)

    @pytest.mark.parametrize("style", ["options", "mixed"])
    def test_styles_build_the_same_universe(self, style):
        with no_warnings():
            reference = self.build("legacy")
            other = self.build(style)
        assert_bit_identical(reference, other)

    def test_options_property_reflects_resolution(self):
        universe = Universe(star_protocol(4), max_configurations=500)
        assert universe.options.limits.max_configurations == 500
        assert universe.options.store == "objects"

    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_options_style(self, workers):
        with no_warnings():
            single = Universe(star_protocol(5))
            sharded = Universe(
                star_protocol(5),
                options=ExplorationOptions(
                    sharding=Sharding(workers=workers, supervision=FAST)
                ),
            )
        assert_bit_identical(single, sharded)

    def test_arena_store_options_style(self, tmp_path):
        with no_warnings():
            objects = Universe(star_protocol(5))
            arena = Universe(
                star_protocol(5),
                options=ExplorationOptions(
                    store="arena",
                    budget=ResourceBudget(spill_dir=tmp_path),
                ),
            )
        assert len(objects) == len(arena)
        assert objects._succ_ids == arena._succ_ids
        assert objects._ids_by_hash == arena._ids_by_hash


class TestRecoveryEquivalence:
    """Fault-injected runs agree across call styles, recovery_log and
    all."""

    def test_same_recovery_log_under_kill(self):
        plan_a = FaultPlan.kill(0, 1)
        plan_b = FaultPlan.kill(0, 1)
        with no_warnings():
            legacy = Universe(
                star_protocol(5),
                workers=2,
                supervision=FAST,
                fault_plan=plan_a,
            )
            styled = Universe(
                star_protocol(5),
                options=ExplorationOptions(
                    sharding=Sharding(
                        workers=2, supervision=FAST, fault_plan=plan_b
                    )
                ),
            )
        assert_bit_identical(legacy, styled)
        strip = lambda log: [  # noqa: E731 - local comparator
            {k: e[k] for k in ("kind", "shard", "layer", "action")}
            for e in log
        ]
        assert strip(legacy.recovery_log) == strip(styled.recovery_log)
        assert legacy.recovery_log  # the fault actually fired

    def test_checkpoint_policy_round_trip(self, tmp_path):
        path = tmp_path / "u.ckpt"
        with no_warnings():
            first = Universe(
                star_protocol(5),
                options=ExplorationOptions(
                    checkpoint=CheckpointPolicy(path=path, every=2)
                ),
            )
            resumed = Universe(
                star_protocol(5),
                options=ExplorationOptions(
                    checkpoint=CheckpointPolicy(path=path)
                ),
            )
        assert path.exists()
        assert resumed._checkpoint_session.resumed_from is not None
        assert_bit_identical(first, resumed)


class TestShim:
    """Conflict detection and rejection semantics of resolve_options."""

    def test_conflicting_double_spec_warns_and_legacy_wins(self):
        with pytest.warns(DeprecationWarning, match="legacy kwarg wins"):
            universe = Universe(
                star_protocol(4),
                max_configurations=700,
                options=ExplorationOptions(
                    limits=Limits(max_configurations=9)
                ),
            )
        assert universe.options.limits.max_configurations == 700
        assert len(universe) > 9  # the tighter options value did not apply

    def test_equal_double_spec_does_not_warn(self):
        with no_warnings():
            Universe(
                star_protocol(4),
                max_configurations=5_000,
                options=ExplorationOptions(
                    limits=Limits(max_configurations=5_000)
                ),
            )

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="max_configs"):
            Universe(star_protocol(4), max_configs=10)

    def test_non_options_object_rejected(self):
        with pytest.raises(TypeError, match="ExplorationOptions"):
            Universe(star_protocol(4), options={"store": "arena"})

    def test_invalid_values_still_validated(self):
        with pytest.raises(UniverseError):
            Universe(
                star_protocol(4),
                options=ExplorationOptions(limits=Limits(on_limit="explode")),
            )


def _spawned_child(blob, queue):
    """Top-level so a spawned interpreter can import and run it."""
    options = pickle.loads(blob)
    universe = Universe(star_protocol(4), options=options)
    queue.put((len(universe), universe.is_complete, universe.options.store))


class TestPicklePortability:
    """Options objects cross process-start boundaries intact."""

    def options(self):
        return ExplorationOptions(
            limits=Limits(max_configurations=10_000),
            checkpoint=CheckpointPolicy(every=2),
            budget=ResourceBudget(rss_budget_mb=4096.0),
            sharding=Sharding(
                workers=2,
                supervision=FAST,
                fault_plan=FaultPlan.kill(0, 1),
            ),
            store="arena",
        )

    def test_pickle_round_trip_preserves_equality(self):
        options = self.options()
        clone = pickle.loads(pickle.dumps(options))
        assert clone.limits == options.limits
        assert clone.checkpoint == options.checkpoint
        assert clone.budget == options.budget
        assert clone.store == options.store
        assert clone.sharding.workers == options.sharding.workers
        assert clone.sharding.supervision == FAST
        # FaultPlan compares by identity; its schedule must survive.
        assert (
            clone.sharding.fault_plan.faults
            == options.sharding.fault_plan.faults
        )

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_options_cross_process_starts(self, method):
        ctx = multiprocessing.get_context(method)
        queue = ctx.Queue()
        blob = pickle.dumps(
            ExplorationOptions(limits=Limits(max_configurations=10_000))
        )
        child = ctx.Process(target=_spawned_child, args=(blob, queue))
        child.start()
        try:
            count, complete, store = queue.get(timeout=120)
        finally:
            child.join(timeout=30)
        assert complete
        assert store == "objects"
        assert count == len(Universe(star_protocol(4)))


class TestOptionsFromArgs:
    """The CLI->options mapping shared by explore and bench."""

    def test_full_namespace_maps_one_to_one(self, tmp_path):
        import argparse

        args = argparse.Namespace(
            limit=123,
            checkpoint=str(tmp_path / "c.ckpt"),
            checkpoint_every=3,
            checkpoint_format="monolithic",
            strict=True,
            rss_budget=2048.0,
            spill_dir=str(tmp_path),
            workers=4,
            fault=["torn_save@2"],
            store="arena",
        )
        options = options_from_args(args)
        assert options.limits.max_configurations == 123
        assert options.limits.on_limit == "truncate"  # implied by budget
        assert options.checkpoint.every == 3
        assert options.checkpoint.format == "monolithic"
        assert options.checkpoint.strict is True
        assert options.budget.rss_budget_mb == 2048.0
        assert options.sharding.workers == 4
        assert len(options.sharding.fault_plan) == 1
        assert options.store == "arena"

    def test_partial_namespace_uses_defaults(self):
        import argparse

        options = options_from_args(argparse.Namespace())
        assert options == ExplorationOptions(
            limits=Limits(max_configurations=1_000_000)
        )
