"""The wave-based polling detector: soundness, liveness, overhead shape."""

import pytest

from repro.core.configuration import Configuration
from repro.protocols.polling_detector import PollingDetectorProtocol, WaveSummary
from repro.protocols.termination import generate_workload
from repro.simulation.scheduler import LazyReceiveScheduler, RandomScheduler
from repro.simulation.simulator import simulate


def run(workload, scheduler, max_waves=64):
    protocol = PollingDetectorProtocol(workload, max_waves=max_waves)
    trace = simulate(protocol, scheduler, max_steps=1_000_000)
    return protocol, trace


class TestDetection:
    @pytest.mark.parametrize("seed", range(6))
    def test_detects_with_enough_waves(self, seed):
        workload = generate_workload(("a", "b", "c"), seed=seed)
        protocol, trace = run(workload, RandomScheduler(seed))
        assert protocol.has_detected(trace.final_configuration)

    @pytest.mark.parametrize("seed", range(10))
    def test_detection_is_sound(self, seed):
        """The four-counter condition never announces early."""
        workload = generate_workload(
            ("a", "b", "c", "d"), seed=seed, activations_per_process=3
        )
        protocol, trace = run(workload, RandomScheduler(seed * 7 + 1))
        for prefix in trace.computation.prefixes():
            configuration = Configuration.from_computation(prefix)
            if protocol.has_detected(configuration):
                assert protocol.is_terminated(configuration)
                break

    def test_detection_under_lazy_network(self):
        workload = generate_workload(("a", "b", "c"), seed=2)
        protocol, trace = run(workload, LazyReceiveScheduler())
        assert protocol.has_detected(trace.final_configuration)


class TestOverhead:
    @pytest.mark.parametrize("seed", range(4))
    def test_overhead_is_two_n_per_wave(self, seed):
        workload = generate_workload(("a", "b", "c"), seed=seed)
        protocol, trace = run(workload, RandomScheduler(seed))
        overhead = protocol.overhead_messages(trace.final_configuration)
        probes = trace.count_messages("probe")
        reports = trace.count_messages("report")
        assert overhead == probes + reports
        assert reports <= probes <= 3 * protocol.max_waves

    def test_needs_at_least_two_waves(self):
        workload = generate_workload(("a", "b", "c"), seed=0)
        protocol, trace = run(workload, RandomScheduler(0))
        assert protocol.overhead_messages(trace.final_configuration) >= 2 * 2 * 3


class TestDetectionCondition:
    def test_two_identical_balanced_passive_waves(self):
        summaries = [WaveSummary(5, 5, True), WaveSummary(5, 5, True)]
        assert PollingDetectorProtocol.detection_condition(summaries)

    def test_single_wave_insufficient(self):
        assert not PollingDetectorProtocol.detection_condition(
            [WaveSummary(5, 5, True)]
        )

    def test_unbalanced_waves_rejected(self):
        summaries = [WaveSummary(5, 4, True), WaveSummary(5, 4, True)]
        assert not PollingDetectorProtocol.detection_condition(summaries)

    def test_active_process_rejected(self):
        summaries = [WaveSummary(5, 5, True), WaveSummary(5, 5, False)]
        assert not PollingDetectorProtocol.detection_condition(summaries)

    def test_changing_counts_rejected(self):
        summaries = [WaveSummary(4, 4, True), WaveSummary(5, 5, True)]
        assert not PollingDetectorProtocol.detection_condition(summaries)


class TestConstruction:
    def test_detector_must_be_fresh(self):
        workload = generate_workload(("a", "b"), seed=0)
        with pytest.raises(ValueError):
            PollingDetectorProtocol(workload, detector="a")

    def test_wave_summaries_only_counts_complete_waves(self):
        workload = generate_workload(("a", "b"), seed=0)
        protocol = PollingDetectorProtocol(workload)
        assert protocol.wave_summaries(()) == []
