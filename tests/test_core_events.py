"""Unit tests for events and messages (§2 conventions)."""

import pytest

from repro.core.events import (
    EventKind,
    Message,
    ReceiveEvent,
    SendEvent,
    corresponds,
    internal,
    message_pair,
    receive,
    send,
)


class TestMessage:
    def test_messages_are_value_objects(self):
        first = Message("p", "q", "ping", 0)
        second = Message("p", "q", "ping", 0)
        assert first == second
        assert hash(first) == hash(second)

    def test_sequence_numbers_distinguish_occurrences(self):
        first = Message("p", "q", "ping", 0)
        second = Message("p", "q", "ping", 1)
        assert first != second

    def test_payload_participates_in_identity(self):
        assert Message("p", "q", "t", 0, payload=1) != Message(
            "p", "q", "t", 0, payload=2
        )

    def test_str_rendering(self):
        assert str(Message("p", "q", "ping", 3)) == "ping#3(p->q)"


class TestEvents:
    def test_send_is_on_the_sender(self):
        event = send(Message("p", "q", "ping"))
        assert event.process == "p"
        assert event.kind is EventKind.SEND
        assert event.is_send and not event.is_receive and not event.is_internal

    def test_receive_is_on_the_receiver(self):
        event = receive(Message("p", "q", "ping"))
        assert event.process == "q"
        assert event.kind is EventKind.RECEIVE

    def test_internal_event_kind(self):
        event = internal("p", tag="step", seq=2)
        assert event.kind is EventKind.INTERNAL
        assert event.is_internal

    def test_send_event_rejects_wrong_process(self):
        with pytest.raises(ValueError):
            SendEvent(process="q", message=Message("p", "q", "ping"))

    def test_receive_event_rejects_wrong_process(self):
        with pytest.raises(ValueError):
            ReceiveEvent(process="p", message=Message("p", "q", "ping"))

    def test_send_event_requires_message(self):
        with pytest.raises(ValueError):
            SendEvent(process="p")

    def test_receive_event_requires_message(self):
        with pytest.raises(ValueError):
            ReceiveEvent(process="q")

    def test_events_are_hashable_value_objects(self):
        first = internal("p", tag="a", seq=0)
        second = internal("p", tag="a", seq=0)
        assert first == second
        assert len({first, second}) == 1

    def test_distinct_internal_events_by_seq(self):
        assert internal("p", tag="a", seq=0) != internal("p", tag="a", seq=1)


class TestCorrespondence:
    def test_message_pair_shares_the_message(self):
        snd, rcv = message_pair("p", "q", "hello")
        assert snd.message is rcv.message
        assert corresponds(snd, rcv)

    def test_correspondence_requires_same_message(self):
        snd, _ = message_pair("p", "q", "hello", seq=0)
        _, other_rcv = message_pair("p", "q", "hello", seq=1)
        assert not corresponds(snd, other_rcv)

    def test_correspondence_requires_send_then_receive(self):
        snd, rcv = message_pair("p", "q", "hello")
        assert not corresponds(rcv, snd)
        assert not corresponds(snd, snd)

    def test_internal_never_corresponds(self):
        snd, rcv = message_pair("p", "q", "hello")
        assert not corresponds(internal("p"), rcv)
        assert not corresponds(snd, internal("q"))


class TestPicklePortability:
    """Cached hashes must never travel inside a pickle.

    ``hash()`` is process-local (per-interpreter string salt, and some
    singleton hashes are address-derived), so a pickled ``_hash_cache``
    would make a replayed event hash under the *writer's* salt while
    fresh events hash under the reader's — silently breaking dedup on
    checkpoint resume in another process.
    """

    def test_pickled_events_drop_the_hash_cache(self):
        import pickle

        snd, rcv = message_pair("p", "q", "hello", seq=2, payload=None)
        evt = internal("p", tag="learn", seq=1)
        for obj in (snd, rcv, evt, snd.message):
            hash(obj)  # warm the cache
            assert "_hash_cache" in obj.__dict__
            back = pickle.loads(pickle.dumps(obj))
            assert back == obj
            assert "_hash_cache" not in back.__dict__
            # Hashing the copy recomputes locally and matches.
            assert hash(back) == hash(obj)

    def test_nested_message_cache_is_dropped_too(self):
        import pickle

        snd, _ = message_pair("p", "q", "hello")
        hash(snd.message)
        back = pickle.loads(pickle.dumps(snd))
        assert "_hash_cache" not in back.message.__dict__
