"""Local predicates and the eight facts of §4.2."""

from repro.knowledge.formula import Knows, Not
from repro.knowledge.predicates import (
    check_all_local_facts,
    check_identical_knowledge_corollary,
    check_local_fact_5,
    check_local_fact_6,
    check_local_fact_8,
    has_received,
    has_sent,
    is_local_to,
    locality_violations,
)


class TestLocality:
    def test_own_receipt_is_local(self, pingpong_evaluator):
        """What q has received is a predicate local to q."""
        assert is_local_to(pingpong_evaluator, has_received("q", "ping"), {"q"})

    def test_remote_state_is_not_local(self, pingpong_evaluator):
        """q's receipt is not local to p: p is unsure mid-flight."""
        assert not is_local_to(pingpong_evaluator, has_received("q", "ping"), {"p"})

    def test_locality_violations_are_genuine(self, pingpong_evaluator):
        b = has_received("q", "ping")
        for configuration in locality_violations(pingpong_evaluator, b, {"p"}):
            assert not pingpong_evaluator.holds(Knows("p", b), configuration)
            assert not pingpong_evaluator.holds(Knows("p", Not(b)), configuration)

    def test_locality_of_whole_set(self, pingpong_evaluator):
        """Every predicate of both processes' histories is local to D."""
        assert is_local_to(pingpong_evaluator, has_received("q", "ping"), {"p", "q"})


class TestEightFacts:
    def test_all_facts_pingpong(self, pingpong_universe, pingpong_evaluator):
        results = check_all_local_facts(
            pingpong_universe,
            has_received("q", "ping"),
            frozenset({"q"}),
            frozenset({"p"}),
            evaluator=pingpong_evaluator,
        )
        assert all(results.values()), results

    def test_all_facts_broadcast(self, broadcast_universe, broadcast_evaluator):
        from repro.protocols.broadcast import fact_known_atom

        protocol = broadcast_universe.protocol
        results = check_all_local_facts(
            broadcast_universe,
            fact_known_atom(protocol, "b"),
            frozenset({"b"}),
            frozenset({"a", "c"}),
            evaluator=broadcast_evaluator,
        )
        assert all(results.values()), results

    def test_knows_is_local_to_the_knower(self, pingpong_evaluator):
        """Fact 5 in isolation (the key to Lemma 4)."""
        assert check_local_fact_5(
            pingpong_evaluator, has_received("q", "ping"), {"p"}
        )
        assert check_local_fact_5(
            pingpong_evaluator, has_sent("p", "ping"), {"q"}
        )

    def test_sure_is_local_to_the_knower(self, pingpong_evaluator):
        assert check_local_fact_8(
            pingpong_evaluator, has_received("q", "ping"), {"p"}
        )

    def test_disjoint_locality_forces_constancy(self, pingpong_evaluator):
        """Lemma 3, non-vacuously: has_received(q) is local to q but not
        to p, so the hypothesis never both holds — and for constants it
        does hold and they are constant."""
        from repro.knowledge.formula import TRUE

        assert check_local_fact_6(pingpong_evaluator, TRUE, {"p"}, {"q"})
        assert check_local_fact_6(
            pingpong_evaluator, has_received("q", "ping"), {"p"}, {"q"}
        )

    def test_identical_knowledge_corollary(self, pingpong_evaluator):
        assert check_identical_knowledge_corollary(
            pingpong_evaluator, has_received("q", "ping"), {"p"}, {"q"}
        )
