"""Property-based tests of the knowledge layer with RANDOM predicates.

The paper's facts are claimed for *every* predicate on computations.
Atoms here are drawn as arbitrary subsets of the universe (predicates
over configurations are automatically ``[D]``-invariant), so these tests
quantify over the full predicate space — far beyond the named protocol
predicates used elsewhere.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.knowledge.axioms import check_all_facts
from repro.knowledge.common import check_common_knowledge
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, Knows, Not
from repro.knowledge.hierarchy import (
    check_hierarchy_converges_to_common_knowledge,
)
from repro.knowledge.transfer import (
    check_theorem_4,
    check_theorem_5_gain,
    check_theorem_6_loss,
)
from repro.protocols.pingpong import PingPongProtocol
from repro.universe.explorer import Universe

UNIVERSE = Universe(PingPongProtocol(rounds=2))
CONFIGS = tuple(UNIVERSE.configurations)
P = frozenset("p")
Q = frozenset("q")

_counter = [0]


def atom_of(subset: frozenset) -> Atom:
    """An atom whose extension is exactly ``subset``."""
    _counter[0] += 1

    def fn(configuration) -> bool:
        return configuration in subset

    return Atom(f"random-{_counter[0]}", fn)


subsets = st.sets(st.sampled_from(CONFIGS)).map(frozenset)
process_sets = st.sampled_from([P, Q, P | Q])


class TestFactsForRandomPredicates:
    @given(subsets, subsets, process_sets, process_sets)
    @settings(max_examples=40, deadline=None)
    def test_all_twelve_facts(self, first, second, p_set, q_set):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        results = check_all_facts(
            UNIVERSE,
            atom_of(first),
            atom_of(second),
            p_set,
            q_set,
            evaluator=evaluator,
        )
        assert all(results.values()), results

    @given(subsets, process_sets)
    @settings(max_examples=40, deadline=None)
    def test_knowledge_is_interior_operator(self, subset, p_set):
        """K is the interior operator of the [P]-partition topology:
        idempotent, deflationary, monotone."""
        evaluator = KnowledgeEvaluator(UNIVERSE)
        b = atom_of(subset)
        knows_b = evaluator.extension(Knows(p_set, b))
        # Deflationary.
        assert knows_b <= evaluator.extension(b)
        # Idempotent.
        assert evaluator.extension(Knows(p_set, Knows(p_set, b))) == knows_b

    @given(subsets, subsets, process_sets)
    @settings(max_examples=40, deadline=None)
    def test_knowledge_monotone_in_the_predicate(self, first, second, p_set):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        smaller = atom_of(first & second)
        larger = atom_of(first | second)
        assert evaluator.extension(Knows(p_set, smaller)) <= evaluator.extension(
            Knows(p_set, larger)
        )

    @given(subsets)
    @settings(max_examples=30, deadline=None)
    def test_dual_possibility(self, subset):
        """¬K¬b is the closure operator: b ⊆ ¬K¬b, and it is the union of
        classes meeting b."""
        evaluator = KnowledgeEvaluator(UNIVERSE)
        b = atom_of(subset)
        possible = evaluator.extension(Not(Knows(P, Not(b))))
        assert evaluator.extension(b) <= possible
        for iso_class in evaluator.partition(P):
            touches = any(member in subset for member in iso_class)
            for member in iso_class:
                assert (member in possible) == touches


class TestTransferForRandomPredicates:
    @given(subsets)
    @settings(max_examples=25, deadline=None)
    def test_theorem_4(self, subset):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        report = check_theorem_4(evaluator, [P, Q], atom_of(subset))
        assert report.holds, report

    @given(subsets)
    @settings(max_examples=25, deadline=None)
    def test_theorem_5_gain(self, subset):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        report = check_theorem_5_gain(
            evaluator, [P], atom_of(subset), check_receive=False
        )
        assert report.holds, report

    @given(subsets)
    @settings(max_examples=25, deadline=None)
    def test_theorem_6_loss(self, subset):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        report = check_theorem_6_loss(
            evaluator, [Q], atom_of(subset), check_send=False
        )
        assert report.holds, report


class TestCommonKnowledgeForRandomPredicates:
    @given(subsets)
    @settings(max_examples=20, deadline=None)
    def test_constancy_and_fixpoint(self, subset):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        results = check_common_knowledge(
            UNIVERSE, atom_of(subset), evaluator=evaluator
        )
        assert all(results.values()), results

    @given(subsets)
    @settings(max_examples=20, deadline=None)
    def test_hierarchy_limit_is_gfp(self, subset):
        evaluator = KnowledgeEvaluator(UNIVERSE)
        assert check_hierarchy_converges_to_common_knowledge(
            evaluator, {"p", "q"}, atom_of(subset)
        )
