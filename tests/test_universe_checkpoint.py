"""Layer-boundary checkpoint/resume and the RSS watchdog.

The contract: an exploration interrupted at any layer boundary and
resumed from its checkpoint file finishes with a universe bit-identical
to an uninterrupted run — same dense ids, CSR arrays, hash buckets
(collision layout included), completeness flag — for the in-process
kernel and the sharded engine alike, and even across engines (a kernel
checkpoint resumed sharded, and vice versa), because the file stores
the merged discovery stream rather than engine-specific state.
"""

import os
import pathlib
import warnings

import pytest

import repro.universe.checkpoint as checkpoint_module
from repro.core.errors import UniverseError
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.checkpoint import (
    CHECKPOINT_MAGIC,
    MANIFEST_MAGIC,
    SEGMENT_MAGIC,
    CheckpointError,
    CheckpointSession,
    RssWatchdog,
    compatibility_token,
    inspect_checkpoint,
    process_rss_mb,
)
from repro.universe.explorer import Universe
from repro.universe.faults import FaultPlan
from repro.universe.sharded import SupervisionPolicy

from test_universe_sharded import assert_bit_identical, star_protocol

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def segment_files(path):
    return sorted(path.parent.glob(f"{path.name}.g*-*.seg"))


def flip_last_byte(path):
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))


def partial_checkpoint(tmp_path, cap=300, name="u.ckpt", **kwargs):
    path = tmp_path / name
    Universe(
        star_protocol(5),
        max_configurations=cap,
        on_limit="truncate",
        checkpoint=path,
        **kwargs,
    )
    return path

FAST = SupervisionPolicy(heartbeat_timeout=5.0, poll_interval=0.02)


def interrupt_then_resume(tmp_path, cap, workers=None, resume_workers=None):
    """Truncate an exploration at ``cap`` configurations (the natural
    mid-exploration interruption: the checkpoint keeps the last
    completed layer boundary), then resume with the cap lifted."""
    path = tmp_path / "universe.ckpt"
    partial = Universe(
        star_protocol(5),
        max_configurations=cap,
        on_limit="truncate",
        checkpoint=path,
        workers=workers,
    )
    assert not partial.is_complete
    resumed = Universe(
        star_protocol(5), checkpoint=path, workers=resume_workers
    )
    return partial, resumed


class TestKernelResume:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        single = Universe(star_protocol(5))
        partial, resumed = interrupt_then_resume(tmp_path, cap=200)
        assert len(partial) == 200
        assert_bit_identical(single, resumed)
        assert resumed._checkpoint_session.resumed_from is not None

    def test_every_interruption_point(self, tmp_path):
        """Truncating at many different caps always resumes exactly."""
        single = Universe(star_protocol(5))
        for cap in (2, 17, 80, 300, 633):
            path = tmp_path / f"cap{cap}.ckpt"
            Universe(
                star_protocol(5),
                max_configurations=cap,
                on_limit="truncate",
                checkpoint=path,
            )
            resumed = Universe(star_protocol(5), checkpoint=path)
            assert_bit_identical(single, resumed)

    def test_fresh_run_with_checkpoint_writes_file(self, tmp_path):
        path = tmp_path / "fresh.ckpt"
        universe = Universe(star_protocol(4), checkpoint=path)
        assert path.exists()
        session = universe._checkpoint_session
        assert session.resumed_from is None
        assert session.saves >= 1
        assert not path.with_name(path.name + ".tmp").exists()  # atomic

    def test_resume_of_complete_run_is_idempotent(self, tmp_path):
        path = tmp_path / "done.ckpt"
        first = Universe(star_protocol(5), checkpoint=path)
        again = Universe(star_protocol(5), checkpoint=path)
        assert again._checkpoint_session.resumed_from == len(first)
        assert_bit_identical(first, again)

    def test_checkpoint_every_reduces_saves(self, tmp_path):
        dense = Universe(
            star_protocol(5), checkpoint=tmp_path / "dense.ckpt"
        )
        sparse = Universe(
            star_protocol(5),
            checkpoint=tmp_path / "sparse.ckpt",
            checkpoint_every=4,
        )
        assert sparse._checkpoint_session.saves < (
            dense._checkpoint_session.saves
        )
        # The final state is always saved, so resume still completes.
        resumed = Universe(
            star_protocol(5), checkpoint=tmp_path / "sparse.ckpt"
        )
        assert_bit_identical(dense, resumed)

    def test_interval_validation(self, tmp_path):
        with pytest.raises(UniverseError, match=">= 1"):
            Universe(
                star_protocol(4),
                checkpoint=tmp_path / "x.ckpt",
                checkpoint_every=0,
            )

    def test_max_events_round_trip(self, tmp_path):
        single = Universe(star_protocol(5), max_events=6)
        path = tmp_path / "capped.ckpt"
        Universe(
            star_protocol(5),
            max_events=6,
            max_configurations=100,
            on_limit="truncate",
            checkpoint=path,
        )
        resumed = Universe(star_protocol(5), max_events=6, checkpoint=path)
        assert not resumed.is_complete  # max_events truncation preserved
        assert_bit_identical(single, resumed)


class TestShardedResume:
    def test_sharded_interrupt_sharded_resume(self, tmp_path):
        single = Universe(star_protocol(5))
        _, resumed = interrupt_then_resume(
            tmp_path, cap=200, workers=2, resume_workers=2
        )
        assert_bit_identical(single, resumed)

    def test_cross_engine_resume(self, tmp_path):
        """The file format is engine-neutral: kernel checkpoint resumed
        sharded, sharded checkpoint resumed by the kernel."""
        single = Universe(star_protocol(5))
        (tmp_path / "a").mkdir()
        _, kernel_to_sharded = interrupt_then_resume(
            tmp_path / "a", cap=150, workers=None, resume_workers=3
        )
        assert_bit_identical(single, kernel_to_sharded)
        (tmp_path / "b").mkdir()
        _, sharded_to_kernel = interrupt_then_resume(
            tmp_path / "b", cap=150, workers=2, resume_workers=None
        )
        assert_bit_identical(single, sharded_to_kernel)

    def test_resume_with_fault_injection(self, tmp_path):
        """Checkpoint resume composes with failover in the same run."""
        single = Universe(star_protocol(5))
        path = tmp_path / "both.ckpt"
        partial = Universe(
            star_protocol(5),
            max_configurations=200,
            on_limit="truncate",
            checkpoint=path,
            workers=2,
        )
        # Fault layers are absolute BFS layer indices; a resumed run
        # starts at the checkpoint's layer, so target one past it.
        resume_layer = partial._checkpoint_session.layers + 1
        resumed = Universe(
            star_protocol(5),
            checkpoint=path,
            workers=2,
            fault_plan=FaultPlan.kill(0, resume_layer),
            supervision=FAST,
        )
        assert resumed.recovery_log
        assert_bit_identical(single, resumed)


class TestStar7Acceptance:
    def test_interrupted_star7_resumes_exactly(self, tmp_path):
        """The acceptance case: a checkpointed star n=7 run interrupted
        mid-exploration resumes to the same ids/CSR/completeness."""
        single = Universe(star_protocol(7), max_configurations=None)
        assert len(single) == 75_974
        path = tmp_path / "star7.ckpt"
        partial = Universe(
            star_protocol(7),
            max_configurations=30_000,
            on_limit="truncate",
            checkpoint=path,
        )
        assert not partial.is_complete
        resumed = Universe(
            star_protocol(7), max_configurations=None, checkpoint=path
        )
        assert resumed.is_complete
        assert len(resumed) == len(single)
        assert resumed._succ_offsets == single._succ_offsets
        assert resumed._succ_ids == single._succ_ids
        assert resumed._ids_by_hash == single._ids_by_hash
        assert resumed._checkpoint_session.resumed_from is not None
        assert resumed._checkpoint_session.resumed_from <= 30_000


class TestFileFormat:
    def build_checkpoint(self, tmp_path):
        path = tmp_path / "u.ckpt"
        Universe(
            star_protocol(5),
            max_configurations=100,
            on_limit="truncate",
            checkpoint=path,
        )
        return path

    def test_wrong_protocol_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(star_protocol(6), checkpoint=path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(TokenBusProtocol(max_hops=4), checkpoint=path)

    def test_wrong_max_events_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(star_protocol(5), max_events=4, checkpoint=path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="bad magic"):
            Universe(star_protocol(5), checkpoint=path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            Universe(star_protocol(5), checkpoint=path)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(CHECKPOINT_MAGIC) + 4] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            Universe(star_protocol(5), checkpoint=path)

    def test_checkpoint_error_is_universe_error(self):
        assert issubclass(CheckpointError, UniverseError)

    def test_token_shape(self):
        protocol = star_protocol(4)
        token = compatibility_token(protocol, 7)
        assert token[0] == 2  # format version (segmented) leads the token
        assert token[3] == 7
        assert token == compatibility_token(star_protocol(4), 7)
        assert token != compatibility_token(star_protocol(5), 7)

    def test_session_validates_interval(self, tmp_path):
        with pytest.raises(UniverseError, match=">= 1"):
            CheckpointSession(
                tmp_path / "x", star_protocol(4), None, every=0
            )


class TestRssWatchdog:
    def test_process_rss_is_measurable(self):
        rss = process_rss_mb()
        assert rss is not None and rss > 1.0
        assert process_rss_mb(os.getpid()) == pytest.approx(rss, rel=0.5)

    def test_unknown_pid_is_none_not_error(self):
        assert process_rss_mb(2**31 - 7) is None

    def test_budget_validation(self):
        with pytest.raises(UniverseError, match="positive"):
            RssWatchdog(0)
        with pytest.raises(UniverseError, match="positive"):
            Universe(star_protocol(4), rss_budget_mb=-5)

    def test_tiny_budget_truncates_gracefully(self):
        """Crossing the budget degrades to truncate, not a crash."""
        universe = Universe(star_protocol(5), rss_budget_mb=1)
        assert not universe.is_complete
        assert len(universe) < 634
        # CSR padding: every configuration has a (possibly empty) row.
        assert len(universe._succ_offsets) == len(universe) + 1

    def test_tiny_budget_truncates_sharded(self):
        universe = Universe(star_protocol(5), workers=2, rss_budget_mb=1)
        assert not universe.is_complete
        assert len(universe._succ_offsets) == len(universe) + 1

    def test_generous_budget_changes_nothing(self):
        single = Universe(star_protocol(5))
        budgeted = Universe(star_protocol(5), rss_budget_mb=100_000)
        assert budgeted.is_complete
        assert_bit_identical(single, budgeted)

    def test_rss_truncation_then_resume(self, tmp_path):
        """The OOM-avoidance story end to end: budget trips, checkpoint
        survives, resume without the budget finishes bit-identically."""
        single = Universe(star_protocol(5))
        path = tmp_path / "oom.ckpt"
        partial = Universe(
            star_protocol(5), rss_budget_mb=1, checkpoint=path
        )
        assert not partial.is_complete
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert resumed.is_complete
        assert_bit_identical(single, resumed)


class TestRssWatchdogDegraded:
    """Hosts with no way to measure RSS must degrade loudly, not arm a
    check that silently never fires."""

    def test_unmeasurable_rss_warns_once_and_deactivates(self, monkeypatch):
        monkeypatch.setattr(checkpoint_module, "process_rss_mb", lambda pid=None: None)
        watchdog = RssWatchdog(100)
        assert watchdog.active
        with pytest.warns(RuntimeWarning, match="RSS watchdog disabled"):
            assert watchdog.exceeded() is False
        assert not watchdog.active
        # Second crossing attempt: silent, still inactive, still False.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert watchdog.exceeded() is False
        assert not watchdog.active

    def test_degraded_watchdog_never_truncates(self, monkeypatch):
        monkeypatch.setattr(checkpoint_module, "process_rss_mb", lambda pid=None: None)
        with pytest.warns(RuntimeWarning, match="RSS watchdog disabled"):
            universe = Universe(star_protocol(5), rss_budget_mb=1)
        # A 1 MiB budget would normally truncate immediately; without a
        # measurement the run completes and the degradation is visible.
        assert universe.is_complete
        assert universe.rss_watchdog_active is False

    def test_healthy_watchdog_is_observable(self):
        universe = Universe(star_protocol(4), rss_budget_mb=100_000)
        assert universe.rss_watchdog_active is True
        assert Universe(star_protocol(4)).rss_watchdog_active is None


class TestSegmentedLayout:
    """On-disk anatomy of the version-2 format."""

    def test_manifest_plus_segments(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        assert path.read_bytes().startswith(MANIFEST_MAGIC)
        segments = segment_files(path)
        assert len(segments) >= 2  # one delta per layer save
        for seg in segments:
            assert seg.read_bytes().startswith(SEGMENT_MAGIC)
        report = inspect_checkpoint(path)
        assert [row["name"] for row in report["segments"]] == [
            seg.name for seg in segments
        ]

    def test_saves_append_not_rewrite(self, tmp_path):
        """Each layer save appends one segment; earlier segment files
        are never touched again (byte-for-byte)."""
        path = tmp_path / "u.ckpt"
        Universe(
            star_protocol(5),
            max_configurations=100,
            on_limit="truncate",
            checkpoint=path,
        )
        early = {seg.name: seg.read_bytes() for seg in segment_files(path)}
        Universe(star_protocol(5), checkpoint=path)
        late = {seg.name: seg.read_bytes() for seg in segment_files(path)}
        assert set(early) < set(late)
        for name, blob in early.items():
            assert late[name] == blob

    def test_compaction_bounds_file_count(self, tmp_path, monkeypatch):
        monkeypatch.setattr(checkpoint_module, "DEFAULT_COMPACT_SEGMENTS", 3)
        single = Universe(star_protocol(5))
        path = tmp_path / "u.ckpt"
        universe = Universe(star_protocol(5), checkpoint=path)
        session = universe._checkpoint_session
        assert session.saves >= 9  # ten layers, saved every layer
        assert len(segment_files(path)) <= 4  # folded, not accumulated
        assert session._generation >= 1
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(single, resumed)

    def test_compaction_threshold_validation(self, tmp_path):
        with pytest.raises(UniverseError, match=">= 2"):
            CheckpointSession(
                tmp_path / "x", star_protocol(4), None, compact_at=1
            )

    def test_format_validation(self, tmp_path):
        with pytest.raises(UniverseError, match="segmented.*monolithic"):
            CheckpointSession(
                tmp_path / "x", star_protocol(4), None, format="yaml"
            )


class TestCorruptionSalvage:
    """Damaged checkpoints resume from the longest intact prefix."""

    def test_corrupt_tail_salvages_and_completes(self, tmp_path):
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path)
        flip_last_byte(segment_files(path)[-1])
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert resumed.is_complete
        assert_bit_identical(single, resumed)
        session = resumed._checkpoint_session
        assert session.salvaged
        events = [
            entry
            for entry in resumed.recovery_log
            if entry["action"] == "salvage-truncate"
        ]
        assert len(events) == 1
        assert events[0]["kind"] == "corrupt_segment"
        assert "CRC mismatch" in events[0]["detail"]

    def test_deleted_tail_segment_salvages(self, tmp_path):
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path)
        segment_files(path)[-1].unlink()
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert resumed.is_complete
        assert_bit_identical(single, resumed)
        events = [
            entry
            for entry in resumed.recovery_log
            if entry["action"] == "salvage-truncate"
        ]
        assert "missing" in events[0]["detail"]

    def test_corrupt_first_segment_restarts(self, tmp_path):
        """No salvageable prefix at all: the run restarts from scratch
        (logged) and still finishes correctly."""
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path)
        flip_last_byte(segment_files(path)[0])
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert resumed.is_complete
        assert_bit_identical(single, resumed)
        assert resumed._checkpoint_session.resumed_from is None
        assert any(
            entry["action"] == "restart" for entry in resumed.recovery_log
        )

    def test_strict_mode_raises_instead(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        flip_last_byte(segment_files(path)[-1])
        with pytest.raises(CheckpointError, match="salvage"):
            Universe(star_protocol(5), checkpoint=path, checkpoint_strict=True)

    def test_strict_on_intact_file_is_inert(self, tmp_path):
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path)
        resumed = Universe(
            star_protocol(5), checkpoint=path, checkpoint_strict=True
        )
        assert_bit_identical(single, resumed)

    def test_orphan_segment_discarded_and_logged(self, tmp_path):
        """A segment file the manifest never committed (torn save) is
        removed on resume, not merged."""
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path)
        orphan = path.with_name(f"{path.name}.g0-000099.seg")
        orphan.write_bytes(SEGMENT_MAGIC + b"torn half-written segment")
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert not orphan.exists()
        assert_bit_identical(single, resumed)
        torn = [
            entry
            for entry in resumed.recovery_log
            if entry["action"] == "discard-orphan"
        ]
        assert torn and torn[0]["detail"] == orphan.name

    def test_salvage_overwrites_damaged_names(self, tmp_path):
        """After salvage, continued saves reuse the truncated segment
        names; a later resume sees a fully healthy file again."""
        path = partial_checkpoint(tmp_path)
        flip_last_byte(segment_files(path)[-1])
        Universe(star_protocol(5), checkpoint=path)
        report = inspect_checkpoint(path)
        assert report["valid"], report
        again = Universe(star_protocol(5), checkpoint=path)
        assert not again.recovery_log


class TestCheckpointFaultInjection:
    """The torn_save / corrupt_segment chaos hooks, in-process."""

    def test_torn_save_dies_between_segment_and_manifest(
        self, tmp_path, monkeypatch
    ):
        class TornDeath(BaseException):
            pass

        def die():
            raise TornDeath

        monkeypatch.setattr(CheckpointSession, "_hard_exit", staticmethod(die))
        path = tmp_path / "u.ckpt"
        with pytest.raises(TornDeath):
            Universe(
                star_protocol(5),
                checkpoint=path,
                fault_plan=FaultPlan.torn_save(3),
            )
        # The segment append outran the manifest: that is the torn state.
        report = inspect_checkpoint(path)
        assert report["orphans"], report
        single = Universe(star_protocol(5))
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(single, resumed)
        assert any(
            entry["action"] == "discard-orphan"
            for entry in resumed.recovery_log
        )

    def test_corrupt_segment_fault_round_trip(self, tmp_path):
        """The fault bit-flips a committed segment after its manifest
        commit; the next resume must salvage exactly there."""
        single = Universe(star_protocol(5))
        path = tmp_path / "u.ckpt"
        Universe(
            star_protocol(5),
            checkpoint=path,
            fault_plan=FaultPlan.corrupt_segment(4),
        )
        report = inspect_checkpoint(path)
        assert not report["valid"]
        assert any("corrupt" in row["status"] for row in report["segments"])
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(single, resumed)
        assert resumed._checkpoint_session.salvaged

    def test_checkpoint_fault_requires_checkpoint_path(self):
        with pytest.raises(UniverseError, match="requires a checkpoint"):
            Universe(star_protocol(4), fault_plan=FaultPlan.torn_save(2))

    def test_fault_fires_at_most_once(self, tmp_path):
        """A corrupt_segment fault fires on one save only; the session
        keeps saving clean segments afterwards."""
        path = tmp_path / "u.ckpt"
        Universe(
            star_protocol(5),
            checkpoint=path,
            fault_plan=FaultPlan.corrupt_segment(2),
        )
        report = inspect_checkpoint(path)
        bad = [r for r in report["segments"] if r["status"] != "ok"]
        assert len(bad) == 1


class TestVersioning:
    """v1 read-compatibility, migration, and future-version refusal."""

    def test_monolithic_writer_still_produces_v1(self, tmp_path):
        path = partial_checkpoint(tmp_path, checkpoint_format="monolithic")
        raw = path.read_bytes()
        assert raw.startswith(CHECKPOINT_MAGIC)
        assert not raw.startswith(MANIFEST_MAGIC)
        assert not segment_files(path)

    def test_v1_resume_migrates_to_segmented(self, tmp_path):
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path, checkpoint_format="monolithic")
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(single, resumed)
        assert path.read_bytes().startswith(MANIFEST_MAGIC)
        assert segment_files(path)
        # And the migrated file itself resumes cleanly.
        again = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(single, again)

    def test_monolithic_round_trip_stays_v1(self, tmp_path):
        single = Universe(star_protocol(5))
        path = partial_checkpoint(tmp_path, checkpoint_format="monolithic")
        resumed = Universe(
            star_protocol(5), checkpoint=path, checkpoint_format="monolithic"
        )
        assert_bit_identical(single, resumed)
        assert path.read_bytes().startswith(CHECKPOINT_MAGIC)
        assert not segment_files(path)

    def test_future_version_fixture_rejected(self, tmp_path):
        fixture = FIXTURES / "checkpoint_v99.ckpt"
        path = tmp_path / "u.ckpt"
        path.write_bytes(fixture.read_bytes())
        with pytest.raises(
            CheckpointError, match=r"version 99 is not supported.*1\.\.2"
        ):
            Universe(star_protocol(5), checkpoint=path)
        report = inspect_checkpoint(path)
        assert report["format_version"] == 99
        assert not report["valid"]
        assert "not supported" in report["error"]

    def test_token_mismatch_messages_name_the_field(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="protocol"):
            Universe(TokenBusProtocol(max_hops=4), checkpoint=path)
        with pytest.raises(CheckpointError, match="process set"):
            Universe(star_protocol(6), checkpoint=path)
        with pytest.raises(CheckpointError, match="max_events="):
            Universe(star_protocol(5), max_events=4, checkpoint=path)


class TestInspectCheckpoint:
    def test_valid_report(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        report = inspect_checkpoint(path)
        assert report["valid"]
        assert report["format_version"] == 2
        assert report["token"]["protocol"].endswith("BroadcastProtocol")
        assert len(report["token"]["processes"]) == 5
        assert report["layers"] == report["salvageable_layers"]
        assert all(row["status"] == "ok" for row in report["segments"])
        assert report["orphans"] == []

    def test_quick_probe_skips_payloads(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        report = inspect_checkpoint(path, verify_segments=False)
        assert all(row["status"] == "unverified" for row in report["segments"])
        assert report["layers"] == report["salvageable_layers"]

    def test_missing_file_report(self, tmp_path):
        report = inspect_checkpoint(tmp_path / "nope.ckpt")
        assert not report["exists"]
        assert not report["valid"]

    def test_corrupt_tail_report(self, tmp_path):
        path = partial_checkpoint(tmp_path)
        flip_last_byte(segment_files(path)[-1])
        report = inspect_checkpoint(path)
        assert not report["valid"]
        assert report["salvageable_layers"] < report["layers"]
        assert "corrupt" in report["segments"][-1]["status"]

    def test_never_raises_on_garbage(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"complete nonsense")
        report = inspect_checkpoint(path)
        assert not report["valid"]
        assert "bad magic" in report["error"]

    def test_v1_report(self, tmp_path):
        path = partial_checkpoint(tmp_path, checkpoint_format="monolithic")
        report = inspect_checkpoint(path)
        assert report["format_version"] == 1
        assert report["valid"]
        assert report["segments"] == []
