"""Layer-boundary checkpoint/resume and the RSS watchdog.

The contract: an exploration interrupted at any layer boundary and
resumed from its checkpoint file finishes with a universe bit-identical
to an uninterrupted run — same dense ids, CSR arrays, hash buckets
(collision layout included), completeness flag — for the in-process
kernel and the sharded engine alike, and even across engines (a kernel
checkpoint resumed sharded, and vice versa), because the file stores
the merged discovery stream rather than engine-specific state.
"""

import os

import pytest

from repro.core.errors import UniverseError
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    CheckpointSession,
    RssWatchdog,
    compatibility_token,
    process_rss_mb,
)
from repro.universe.explorer import Universe
from repro.universe.faults import FaultPlan
from repro.universe.sharded import SupervisionPolicy

from test_universe_sharded import assert_bit_identical, star_protocol

FAST = SupervisionPolicy(heartbeat_timeout=5.0, poll_interval=0.02)


def interrupt_then_resume(tmp_path, cap, workers=None, resume_workers=None):
    """Truncate an exploration at ``cap`` configurations (the natural
    mid-exploration interruption: the checkpoint keeps the last
    completed layer boundary), then resume with the cap lifted."""
    path = tmp_path / "universe.ckpt"
    partial = Universe(
        star_protocol(5),
        max_configurations=cap,
        on_limit="truncate",
        checkpoint=path,
        workers=workers,
    )
    assert not partial.is_complete
    resumed = Universe(
        star_protocol(5), checkpoint=path, workers=resume_workers
    )
    return partial, resumed


class TestKernelResume:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        single = Universe(star_protocol(5))
        partial, resumed = interrupt_then_resume(tmp_path, cap=200)
        assert len(partial) == 200
        assert_bit_identical(single, resumed)
        assert resumed._checkpoint_session.resumed_from is not None

    def test_every_interruption_point(self, tmp_path):
        """Truncating at many different caps always resumes exactly."""
        single = Universe(star_protocol(5))
        for cap in (2, 17, 80, 300, 633):
            path = tmp_path / f"cap{cap}.ckpt"
            Universe(
                star_protocol(5),
                max_configurations=cap,
                on_limit="truncate",
                checkpoint=path,
            )
            resumed = Universe(star_protocol(5), checkpoint=path)
            assert_bit_identical(single, resumed)

    def test_fresh_run_with_checkpoint_writes_file(self, tmp_path):
        path = tmp_path / "fresh.ckpt"
        universe = Universe(star_protocol(4), checkpoint=path)
        assert path.exists()
        session = universe._checkpoint_session
        assert session.resumed_from is None
        assert session.saves >= 1
        assert not path.with_name(path.name + ".tmp").exists()  # atomic

    def test_resume_of_complete_run_is_idempotent(self, tmp_path):
        path = tmp_path / "done.ckpt"
        first = Universe(star_protocol(5), checkpoint=path)
        again = Universe(star_protocol(5), checkpoint=path)
        assert again._checkpoint_session.resumed_from == len(first)
        assert_bit_identical(first, again)

    def test_checkpoint_every_reduces_saves(self, tmp_path):
        dense = Universe(
            star_protocol(5), checkpoint=tmp_path / "dense.ckpt"
        )
        sparse = Universe(
            star_protocol(5),
            checkpoint=tmp_path / "sparse.ckpt",
            checkpoint_every=4,
        )
        assert sparse._checkpoint_session.saves < (
            dense._checkpoint_session.saves
        )
        # The final state is always saved, so resume still completes.
        resumed = Universe(
            star_protocol(5), checkpoint=tmp_path / "sparse.ckpt"
        )
        assert_bit_identical(dense, resumed)

    def test_interval_validation(self, tmp_path):
        with pytest.raises(UniverseError, match=">= 1"):
            Universe(
                star_protocol(4),
                checkpoint=tmp_path / "x.ckpt",
                checkpoint_every=0,
            )

    def test_max_events_round_trip(self, tmp_path):
        single = Universe(star_protocol(5), max_events=6)
        path = tmp_path / "capped.ckpt"
        Universe(
            star_protocol(5),
            max_events=6,
            max_configurations=100,
            on_limit="truncate",
            checkpoint=path,
        )
        resumed = Universe(star_protocol(5), max_events=6, checkpoint=path)
        assert not resumed.is_complete  # max_events truncation preserved
        assert_bit_identical(single, resumed)


class TestShardedResume:
    def test_sharded_interrupt_sharded_resume(self, tmp_path):
        single = Universe(star_protocol(5))
        _, resumed = interrupt_then_resume(
            tmp_path, cap=200, workers=2, resume_workers=2
        )
        assert_bit_identical(single, resumed)

    def test_cross_engine_resume(self, tmp_path):
        """The file format is engine-neutral: kernel checkpoint resumed
        sharded, sharded checkpoint resumed by the kernel."""
        single = Universe(star_protocol(5))
        (tmp_path / "a").mkdir()
        _, kernel_to_sharded = interrupt_then_resume(
            tmp_path / "a", cap=150, workers=None, resume_workers=3
        )
        assert_bit_identical(single, kernel_to_sharded)
        (tmp_path / "b").mkdir()
        _, sharded_to_kernel = interrupt_then_resume(
            tmp_path / "b", cap=150, workers=2, resume_workers=None
        )
        assert_bit_identical(single, sharded_to_kernel)

    def test_resume_with_fault_injection(self, tmp_path):
        """Checkpoint resume composes with failover in the same run."""
        single = Universe(star_protocol(5))
        path = tmp_path / "both.ckpt"
        partial = Universe(
            star_protocol(5),
            max_configurations=200,
            on_limit="truncate",
            checkpoint=path,
            workers=2,
        )
        # Fault layers are absolute BFS layer indices; a resumed run
        # starts at the checkpoint's layer, so target one past it.
        resume_layer = partial._checkpoint_session.layers + 1
        resumed = Universe(
            star_protocol(5),
            checkpoint=path,
            workers=2,
            fault_plan=FaultPlan.kill(0, resume_layer),
            supervision=FAST,
        )
        assert resumed.recovery_log
        assert_bit_identical(single, resumed)


class TestStar7Acceptance:
    def test_interrupted_star7_resumes_exactly(self, tmp_path):
        """The acceptance case: a checkpointed star n=7 run interrupted
        mid-exploration resumes to the same ids/CSR/completeness."""
        single = Universe(star_protocol(7), max_configurations=None)
        assert len(single) == 75_974
        path = tmp_path / "star7.ckpt"
        partial = Universe(
            star_protocol(7),
            max_configurations=30_000,
            on_limit="truncate",
            checkpoint=path,
        )
        assert not partial.is_complete
        resumed = Universe(
            star_protocol(7), max_configurations=None, checkpoint=path
        )
        assert resumed.is_complete
        assert len(resumed) == len(single)
        assert resumed._succ_offsets == single._succ_offsets
        assert resumed._succ_ids == single._succ_ids
        assert resumed._ids_by_hash == single._ids_by_hash
        assert resumed._checkpoint_session.resumed_from is not None
        assert resumed._checkpoint_session.resumed_from <= 30_000


class TestFileFormat:
    def build_checkpoint(self, tmp_path):
        path = tmp_path / "u.ckpt"
        Universe(
            star_protocol(5),
            max_configurations=100,
            on_limit="truncate",
            checkpoint=path,
        )
        return path

    def test_wrong_protocol_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(star_protocol(6), checkpoint=path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(TokenBusProtocol(max_hops=4), checkpoint=path)

    def test_wrong_max_events_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="incompatible"):
            Universe(star_protocol(5), max_events=4, checkpoint=path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="bad magic"):
            Universe(star_protocol(5), checkpoint=path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            Universe(star_protocol(5), checkpoint=path)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = self.build_checkpoint(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(CHECKPOINT_MAGIC) + 4] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            Universe(star_protocol(5), checkpoint=path)

    def test_checkpoint_error_is_universe_error(self):
        assert issubclass(CheckpointError, UniverseError)

    def test_token_shape(self):
        protocol = star_protocol(4)
        token = compatibility_token(protocol, 7)
        assert token[0] == 1  # format version leads the token
        assert token[3] == 7
        assert token == compatibility_token(star_protocol(4), 7)
        assert token != compatibility_token(star_protocol(5), 7)

    def test_session_validates_interval(self, tmp_path):
        with pytest.raises(UniverseError, match=">= 1"):
            CheckpointSession(
                tmp_path / "x", star_protocol(4), None, every=0
            )


class TestRssWatchdog:
    def test_process_rss_is_measurable(self):
        rss = process_rss_mb()
        assert rss is not None and rss > 1.0
        assert process_rss_mb(os.getpid()) == pytest.approx(rss, rel=0.5)

    def test_unknown_pid_is_none_not_error(self):
        assert process_rss_mb(2**31 - 7) is None

    def test_budget_validation(self):
        with pytest.raises(UniverseError, match="positive"):
            RssWatchdog(0)
        with pytest.raises(UniverseError, match="positive"):
            Universe(star_protocol(4), rss_budget_mb=-5)

    def test_tiny_budget_truncates_gracefully(self):
        """Crossing the budget degrades to truncate, not a crash."""
        universe = Universe(star_protocol(5), rss_budget_mb=1)
        assert not universe.is_complete
        assert len(universe) < 634
        # CSR padding: every configuration has a (possibly empty) row.
        assert len(universe._succ_offsets) == len(universe) + 1

    def test_tiny_budget_truncates_sharded(self):
        universe = Universe(star_protocol(5), workers=2, rss_budget_mb=1)
        assert not universe.is_complete
        assert len(universe._succ_offsets) == len(universe) + 1

    def test_generous_budget_changes_nothing(self):
        single = Universe(star_protocol(5))
        budgeted = Universe(star_protocol(5), rss_budget_mb=100_000)
        assert budgeted.is_complete
        assert_bit_identical(single, budgeted)

    def test_rss_truncation_then_resume(self, tmp_path):
        """The OOM-avoidance story end to end: budget trips, checkpoint
        survives, resume without the budget finishes bit-identically."""
        single = Universe(star_protocol(5))
        path = tmp_path / "oom.ckpt"
        partial = Universe(
            star_protocol(5), rss_budget_mb=1, checkpoint=path
        )
        assert not partial.is_complete
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert resumed.is_complete
        assert_bit_identical(single, resumed)
