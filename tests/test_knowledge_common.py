"""Common knowledge: fixpoint semantics and the constancy corollary."""

from repro.knowledge.common import (
    check_common_knowledge,
    check_constancy_corollary,
    check_fixpoint_characterisation,
    common_knowledge,
)
from repro.knowledge.formula import TRUE, CommonKnowledge, Knows
from repro.knowledge.predicates import has_received, has_sent


class TestFixpoint:
    def test_fixpoint_characterisation(self, pingpong_evaluator):
        assert check_fixpoint_characterisation(
            pingpong_evaluator, has_received("q", "ping"), {"p", "q"}
        )

    def test_hierarchy_and_constancy(self, pingpong_universe, pingpong_evaluator):
        results = check_common_knowledge(
            pingpong_universe,
            has_received("q", "ping"),
            evaluator=pingpong_evaluator,
        )
        assert all(results.values()), results

    def test_constant_true_is_common_knowledge_everywhere(
        self, pingpong_universe, pingpong_evaluator
    ):
        ck = common_knowledge({"p", "q"}, TRUE)
        assert pingpong_evaluator.is_valid(ck)

    def test_contingent_predicate_is_never_common_knowledge(
        self, pingpong_universe, pingpong_evaluator
    ):
        """The paper's corollary: common knowledge is constant, so a
        predicate that is false somewhere is common knowledge nowhere."""
        b = has_received("q", "ping")
        assert not pingpong_evaluator.is_constant(b)
        ck = common_knowledge({"p", "q"}, b)
        assert len(pingpong_evaluator.extension(ck)) == 0

    def test_common_knowledge_cannot_be_gained(self, pingpong_evaluator):
        assert check_constancy_corollary(
            pingpong_evaluator, has_received("q", "ping"), {"p", "q"}
        )
        assert check_constancy_corollary(
            pingpong_evaluator, has_sent("p", "ping"), {"p", "q"}
        )

    def test_broadcast_common_knowledge_constancy(
        self, broadcast_universe, broadcast_evaluator
    ):
        from repro.protocols.broadcast import fact_established_atom

        fact = fact_established_atom(broadcast_universe.protocol)
        results = check_common_knowledge(
            broadcast_universe, fact, evaluator=broadcast_evaluator
        )
        assert all(results.values()), results
        # The fact does become *everyone knows*, yet never common knowledge:
        everyone = Knows("a", fact) & Knows("b", fact) & Knows("c", fact)
        assert len(broadcast_evaluator.extension(everyone)) > 0
        ck = CommonKnowledge({"a", "b", "c"}, fact)
        assert len(broadcast_evaluator.extension(ck)) == 0

    def test_single_process_common_knowledge_is_its_knowledge(
        self, pingpong_evaluator
    ):
        b = has_sent("p", "ping")
        ck = CommonKnowledge({"p"}, b)
        knows = Knows("p", b)
        assert set(pingpong_evaluator.extension(ck)) == set(
            pingpong_evaluator.extension(knows)
        )
