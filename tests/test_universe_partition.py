"""Partition tables: dense/sparse representations and mask algebra."""

import pytest

from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.universe.explorer import PartitionTable, Universe, iter_bit_ids


@pytest.fixture(scope="module")
def star_universe() -> Universe:
    return Universe(
        BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")
    )


def sparse_twin(table: PartitionTable) -> PartitionTable:
    """The same partition, forced onto the sparse representation."""
    buckets = {
        index: list(members) for index, members in enumerate(table.members)
    }
    return PartitionTable(table.size, buckets, sparse=True)


class TestIterBitIds:
    def test_matches_naive_iteration(self):
        for mask in (0, 1, 0b1010, (1 << 200) | (1 << 3), (1 << 500) - 1):
            naive = [index for index in range(mask.bit_length()) if mask >> index & 1]
            assert list(iter_bit_ids(mask)) == naive


class TestPartitionInvariants:
    @pytest.mark.parametrize("processes", [{"hub"}, {"x"}, {"hub", "x"}, set()])
    def test_masks_partition_the_universe(self, star_universe, processes):
        table = star_universe.partition_table(frozenset(processes))
        union = 0
        for mask in table.masks():
            assert union & mask == 0
            union |= mask
        assert union == star_universe.full_mask

    def test_class_of_agrees_with_masks(self, star_universe):
        table = star_universe.partition_table(frozenset({"hub"}))
        for index, mask in enumerate(table.masks()):
            for config_id in iter_bit_ids(mask):
                assert table.class_of[config_id] == index

    def test_members_ascending_and_complete(self, star_universe):
        table = star_universe.partition_table(frozenset({"x", "y"}))
        seen = set()
        for members in table.members:
            assert list(members) == sorted(members)
            seen.update(members)
        assert seen == set(range(len(star_universe)))

    def test_iso_class_index_matches_class_of(self, star_universe):
        for configuration in star_universe:
            index = star_universe.iso_class_index(configuration, {"hub"})
            config_id = star_universe.config_id(configuration)
            table = star_universe.partition_table(frozenset({"hub"}))
            assert table.class_of[config_id] == index


class TestSparseRepresentation:
    def test_sparse_masks_equal_dense(self, star_universe):
        dense = star_universe.partition_table(frozenset({"hub"}))
        sparse = sparse_twin(dense)
        assert sparse.sparse and not dense.sparse
        assert sparse.masks() == dense.masks()
        for index in range(dense.num_classes):
            assert sparse.class_mask(index) == dense.class_mask(index)

    def test_sparse_compose_equals_dense(self, star_universe):
        dense = star_universe.partition_table(frozenset({"x"}))
        sparse = sparse_twin(dense)
        probes = [1, star_universe.full_mask, (1 << 40) - 1 & star_universe.full_mask]
        for mask in probes:
            assert sparse.compose(mask) == dense.compose(mask)

    def test_sparse_contained_classes_equals_dense(self, star_universe):
        dense = star_universe.partition_table(frozenset({"y"}))
        sparse = sparse_twin(dense)
        probes = [0, star_universe.full_mask, dense.class_mask(0), 0b1011]
        for body in probes:
            assert sparse.contained_classes_mask(
                body
            ) == dense.contained_classes_mask(body)

    def test_fragmented_partition_goes_sparse_past_budget(self, star_universe):
        # The [D]-partition is all singletons; with a tiny budget it must
        # pick the sparse representation and still answer identically.
        import repro.universe.explorer as explorer

        buckets = {index: [index] for index in range(len(star_universe))}
        dense = PartitionTable(len(star_universe), buckets, sparse=False)
        auto = PartitionTable(len(star_universe), buckets)
        assert auto.sparse == (
            auto.num_classes * ((auto.size + 63) >> 6)
            > explorer._DENSE_MASK_WORD_BUDGET
        )
        forced = PartitionTable(len(star_universe), buckets, sparse=True)
        assert forced.compose(0b101) == dense.compose(0b101) == 0b101
        assert forced.masks() == dense.masks()


class TestCompose:
    def test_compose_is_union_of_touched_classes(self, star_universe):
        table = star_universe.partition_table(frozenset({"hub"}))
        for configuration in list(star_universe)[::7]:
            config_id = star_universe.config_id(configuration)
            composed = star_universe.compose_masks(1 << config_id, {"hub"})
            assert composed == star_universe.iso_class_mask(
                configuration, {"hub"}
            )
            assert table.compose(composed) == composed  # idempotent

    def test_compose_unions_each_class_once(self, star_universe):
        full = star_universe.compose_masks(star_universe.full_mask, {"x"})
        assert full == star_universe.full_mask

    def test_classes_mask_memoises_combinations(self, star_universe):
        table = star_universe.partition_table(frozenset({"hub"}))
        indices = frozenset(range(min(3, table.num_classes)))
        first = table.classes_mask(indices)
        second = table.classes_mask(sorted(indices))
        assert first == second
        expected = 0
        for index in indices:
            expected |= table.class_mask(index)
        assert first == expected


class TestClassAdjacency:
    def test_adjacency_lists_reachable_classes(self, star_universe):
        first = frozenset({"hub"})
        second = frozenset({"x"})
        adjacency = star_universe.class_adjacency(first, second)
        first_table = star_universe.partition_table(first)
        second_table = star_universe.partition_table(second)
        for index, reachable in enumerate(adjacency):
            expected = {
                second_table.class_of[config_id]
                for config_id in first_table.members[index]
            }
            assert set(reachable) == expected
            assert list(reachable) == sorted(reachable)


class TestSparseMaskMemo:
    def test_repeat_class_mask_calls_hit_the_memo(self, star_universe):
        table = sparse_twin(star_universe.partition_table(frozenset({"hub"})))
        first = table.class_mask(0)
        second = table.class_mask(0)
        assert first is second  # memoised, not re-materialised

    def test_memo_respects_the_word_budget(self, star_universe):
        from repro.universe.explorer import _SPARSE_MASK_MEMO_WORDS

        table = sparse_twin(star_universe.partition_table(frozenset({"hub"})))
        for index in range(table.num_classes):
            table.class_mask(index)
        assert table._sparse_memo_words <= _SPARSE_MASK_MEMO_WORDS

    def test_sparse_masks_equal_dense_masks(self, star_universe):
        dense = star_universe.partition_table(frozenset({"hub", "x"}))
        sparse = sparse_twin(dense)
        assert sparse.masks() == dense.masks()


class TestFingerprints:
    def test_equal_partitions_share_a_fingerprint(self, star_universe):
        table = star_universe.partition_table(frozenset({"hub"}))
        rebuilt = PartitionTable(
            table.size,
            {index: list(members) for index, members in enumerate(table.members)},
        )
        assert rebuilt.fingerprint == table.fingerprint
        assert rebuilt.same_partition_as(table)
        assert table.same_partition_as(rebuilt)

    def test_distinct_partitions_differ(self, star_universe):
        hub = star_universe.partition_table(frozenset({"hub"}))
        x = star_universe.partition_table(frozenset({"x"}))
        assert hub.fingerprint != x.fingerprint
        assert not hub.same_partition_as(x)

    def test_fingerprint_is_stable_across_rebuilds(self, star_universe):
        """First-occurrence labelling makes class_of canonical, so the
        fingerprint is a pure function of the partition."""
        table = star_universe.partition_table(frozenset({"x"}))
        twin = Universe(
            BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")
        ).partition_table(frozenset({"x"}))
        assert twin.fingerprint == table.fingerprint

    def test_verify_consistency_is_memoised(self, star_universe):
        table = star_universe.partition_table(frozenset({"hub"}))
        assert table.verify_consistency()
        assert table._consistent is True
        assert table.verify_consistency()


class TestRefinementProduct:
    def brute_product(self, universe, first, second):
        p_of = universe.partition_table(first).class_of
        q_of = universe.partition_table(second).class_of
        labels = {}
        out = []
        for config_id in range(len(universe)):
            pair = (p_of[config_id], q_of[config_id])
            out.append(labels.setdefault(pair, len(labels)))
        return out

    def test_matches_brute_force_grouping(self, star_universe):
        first = frozenset({"hub"})
        second = frozenset({"x"})
        product = star_universe.refinement_product(first, second)
        assert list(product.class_of) == self.brute_product(
            star_universe, first, second
        )

    def test_symmetric_and_memoised(self, star_universe):
        first = frozenset({"hub"})
        second = frozenset({"y"})
        forward = star_universe.refinement_product(first, second)
        backward = star_universe.refinement_product(second, first)
        assert forward is backward  # one product per unordered pair

    def test_same_set_returns_the_partition_itself(self, star_universe):
        p = frozenset({"x"})
        assert star_universe.refinement_product(p, p) is (
            star_universe.partition_table(p)
        )

    def test_equals_union_partition_for_valid_universes(self, star_universe):
        """Property 7 instance: [P] ∩ [Q] == [P ∪ Q] here."""
        first = frozenset({"hub"})
        second = frozenset({"x"})
        product = star_universe.refinement_product(first, second)
        union = star_universe.partition_table(first | second)
        assert product.same_partition_as(union)

    def test_adjacency_derives_from_the_product(self, star_universe):
        first = frozenset({"hub"})
        second = frozenset({"z"})
        rows = star_universe.class_adjacency(first, second)
        p_of = star_universe.partition_table(first).class_of
        q_of = star_universe.partition_table(second).class_of
        expected = [set() for _ in rows]
        for config_id in range(len(star_universe)):
            expected[p_of[config_id]].add(q_of[config_id])
        assert [set(row) for row in rows] == expected
