"""Belief (§6): introspective but not veridical."""

import pytest

from repro.knowledge.belief import BeliefEvaluator, false_belief_census
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows, Not
from repro.knowledge.predicates import has_received
from repro.protocols.failure_monitor import AsyncFailureMonitorProtocol
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def failure_setup():
    protocol = AsyncFailureMonitorProtocol(heartbeats=2)
    universe = Universe(protocol)
    crashed = protocol.crashed_atom()
    evaluator = BeliefEvaluator(universe, lambda c: not crashed.fn(c))
    return protocol, universe, crashed, evaluator


class TestBeliefBasics:
    def test_full_plausibility_is_knowledge(self, pingpong_universe):
        b = has_received("q", "ping")
        belief = BeliefEvaluator(pingpong_universe, lambda c: True)
        base = KnowledgeEvaluator(pingpong_universe)
        assert belief.believes_extension({"p"}, b) == base.extension(
            Knows("p", b)
        )

    def test_knowledge_implies_belief(self, failure_setup):
        protocol, universe, crashed, evaluator = failure_setup
        for formula in (crashed, Not(crashed)):
            assert evaluator.knowledge_implies_belief({"m"}, formula)
            assert evaluator.knowledge_implies_belief({"w"}, formula)

    def test_explicit_plausible_set(self, pingpong_universe):
        plausible = [c for c in pingpong_universe if len(c) <= 2]
        evaluator = BeliefEvaluator(pingpong_universe, plausible)
        assert evaluator.plausible == frozenset(plausible)

    def test_foreign_plausible_configuration_rejected(self, pingpong_universe):
        from repro.core.configuration import Configuration
        from repro.core.events import internal

        foreign = Configuration({"x": (internal("x"),)})
        with pytest.raises(Exception):
            BeliefEvaluator(pingpong_universe, [foreign])


class TestNonVeridicality:
    def test_monitor_believes_the_worker_alive_even_when_dead(
        self, failure_setup
    ):
        """The §6 caveat, concretely: with 'no crash' plausibility the
        monitor believes ¬crashed everywhere — including every crashed
        computation."""
        protocol, universe, crashed, evaluator = failure_setup
        alive = Not(crashed)
        false = evaluator.false_beliefs({"m"}, alive)
        assert len(false) > 0
        for configuration in false:
            assert crashed.fn(configuration)

    def test_knowledge_has_no_false_extension(self, failure_setup):
        """Contrast: knowledge of the same predicate is veridical."""
        protocol, universe, crashed, evaluator = failure_setup
        base = KnowledgeEvaluator(universe)
        alive = Not(crashed)
        knows_alive = base.extension(Knows("m", alive))
        alive_extension = base.extension(alive)
        assert knows_alive <= alive_extension

    def test_census(self, failure_setup):
        protocol, universe, crashed, _ = failure_setup
        census = false_belief_census(
            universe, lambda c: not crashed.fn(c), {"m"}, Not(crashed)
        )
        assert census["false_beliefs"] > 0
        assert census["plausible"] < census["universe"]
        assert census["believes"] == census["universe"]

    def test_worker_itself_never_falsely_believes(self, failure_setup):
        """The crash is local to the worker: even under the optimistic
        plausibility, the worker's belief about its own crash state is
        correct wherever it is consistent."""
        protocol, universe, crashed, evaluator = failure_setup
        false = evaluator.false_beliefs({"w"}, Not(crashed))
        for configuration in false:
            # Any false belief of the worker must be at a configuration
            # where its plausibility class is empty (vacuous belief).
            assert not evaluator.is_consistent_at({"w"}, configuration)


class TestIntrospection:
    def test_belief_is_class_stable(self, failure_setup):
        """Belief is a property of the [P]-class (the introspection facts
        reduce to this, as for knowledge)."""
        protocol, universe, crashed, evaluator = failure_setup
        believes = evaluator.believes_extension({"m"}, Not(crashed))
        base = KnowledgeEvaluator(universe)
        for iso_class in base.partition({"m"}):
            values = {member in believes for member in iso_class}
            assert len(values) == 1
