"""Fault injection and recovery: the sharded engine under failure.

The reliability contract of PR 6: killing, hanging or corrupting any
worker at any BFS layer must (a) never deadlock the coordinator and
(b) produce a universe bit-identical to the fault-free exploration —
because shard expansion is a pure function of the merged discovery
stream, failover (respawn-and-replay or fold-into-coordinator) cannot
perturb the result.  The matrix below asserts exactly that, plus the
supporting machinery: typed failures, structured worker-error
propagation with original tracebacks, exception-safe teardown with no
orphan processes or leaked descriptors, and the :class:`FaultPlan`
delivery semantics.
"""

import multiprocessing
import os
import time

import pytest

from repro.core.errors import UniverseError
from repro.protocols.broadcast import BroadcastProtocol, tree_topology
from repro.protocols.failure_monitor import SyncFailureMonitorProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.explorer import Universe
from repro.universe.faults import FAULT_KINDS, Fault, FaultPlan
from repro.universe.sharded import (
    ShardedExplorer,
    SupervisionPolicy,
    WorkerError,
    discovery_stream,
)

from test_universe_sharded import assert_bit_identical, star_protocol

# Deterministic faults need no long grace periods; a tight poll keeps
# the matrix fast while the 5 s heartbeat ceiling stays far above any
# honest expansion gap at these sizes.
FAST = SupervisionPolicy(heartbeat_timeout=5.0, poll_interval=0.02)


def layer_count(universe: Universe) -> int:
    """Number of BFS layers (= layer exchanges) of a universe."""
    layers = 0
    start, count = 0, 1
    offsets = universe._succ_offsets
    ids = universe._succ_ids
    while start < count:
        end = count
        # children discovered by this layer = max id seen + 1
        for parent in range(start, end):
            for child in ids[offsets[parent]:offsets[parent + 1]]:
                if child >= count:
                    count = child + 1
        layers += 1
        start = end
    return layers


class TestKillMatrix:
    """Kill each worker at each layer — the acceptance matrix."""

    def test_star5_every_worker_every_layer(self):
        single = Universe(star_protocol(5))
        layers = layer_count(single)
        assert layers == 10
        for workers in (2, 3):
            for layer in range(layers):
                for shard in range(workers):
                    recovered = Universe(
                        star_protocol(5),
                        workers=workers,
                        fault_plan=FaultPlan.kill(shard, layer),
                        supervision=FAST,
                    )
                    assert_bit_identical(single, recovered)
                    assert recovered.recovery_log, (
                        f"kill(w{shard}@L{layer}) never fired"
                    )
                    event = recovered.recovery_log[0]
                    assert event["shard"] == shard
                    assert event["layer"] == layer
                    assert event["kind"] == "exit"

    def test_star6_acceptance_scale(self):
        """Star n=6 × workers 2–4: every layer at K=2, representative
        layers at K=3 and K=4 (the full cube would dominate suite
        time on a single-core runner without adding coverage)."""
        single = Universe(star_protocol(6))
        layers = layer_count(single)
        assert layers == 12
        cases = [(2, layer) for layer in range(layers)]
        cases += [(3, layer) for layer in (0, 4, 8, layers - 1)]
        cases += [(4, layer) for layer in (1, 6, layers - 1)]
        for workers, layer in cases:
            shard = layer % workers
            recovered = Universe(
                star_protocol(6),
                workers=workers,
                fault_plan=FaultPlan.kill(shard, layer),
                supervision=FAST,
            )
            assert_bit_identical(single, recovered)
            assert recovered.recovery_log

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(
                lambda: BroadcastProtocol(
                    tree_topology(tuple(f"t{i}" for i in range(7))), "t0"
                ),
                id="tree",
            ),
            pytest.param(lambda: TokenBusProtocol(max_hops=5), id="tokenbus"),
            pytest.param(
                lambda: SyncFailureMonitorProtocol(rounds=2),
                id="custom-enabling",
            ),
        ],
    )
    def test_other_protocol_families(self, factory):
        single = Universe(factory())
        for workers, layer in ((2, 2), (3, 1)):
            recovered = Universe(
                factory(),
                workers=workers,
                fault_plan=FaultPlan.kill(layer % workers, layer),
                supervision=FAST,
            )
            assert_bit_identical(single, recovered)
            assert recovered.recovery_log


class TestOtherFaultKinds:
    def test_corrupt_batch_detected_before_unpickling(self):
        single = Universe(star_protocol(5))
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.corrupt_batch(1, 4),
            supervision=FAST,
        )
        assert_bit_identical(single, recovered)
        assert recovered.recovery_log[0]["kind"] == "corrupt"

    def test_dropped_batch_times_out_and_recovers(self):
        single = Universe(star_protocol(5))
        policy = SupervisionPolicy(heartbeat_timeout=0.5, poll_interval=0.02)
        start = time.monotonic()
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.drop_batch(0, 3),
            supervision=policy,
        )
        elapsed = time.monotonic() - start
        assert_bit_identical(single, recovered)
        assert recovered.recovery_log[0]["kind"] == "timeout"
        # The wait was bounded: one timeout window plus exploration,
        # nowhere near a hang.
        assert elapsed < 10

    def test_short_delay_is_absorbed(self):
        single = Universe(star_protocol(5))
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.delay_batch(0, 2, 0.1),
            supervision=SupervisionPolicy(
                heartbeat_timeout=5.0, poll_interval=0.02
            ),
        )
        assert_bit_identical(single, recovered)
        assert not recovered.recovery_log  # no failover needed

    def test_long_delay_is_a_timeout(self):
        single = Universe(star_protocol(5))
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.delay_batch(1, 3, 1.5),
            supervision=SupervisionPolicy(
                heartbeat_timeout=0.4, poll_interval=0.02
            ),
        )
        assert_bit_identical(single, recovered)
        assert recovered.recovery_log[0]["kind"] == "timeout"

    def test_multiple_faults_one_run(self):
        single = Universe(star_protocol(5))
        plan = FaultPlan(
            (
                Fault("kill", 0, 2),
                Fault("corrupt_batch", 1, 5),
            )
        )
        recovered = Universe(
            star_protocol(5), workers=2, fault_plan=plan, supervision=FAST
        )
        assert_bit_identical(single, recovered)
        assert len(recovered.recovery_log) == 2

    def test_seeded_plan_is_reproducible(self):
        first = FaultPlan.seeded(7, workers=3, max_layer=5, faults=2)
        second = FaultPlan.seeded(7, workers=3, max_layer=5, faults=2)
        assert first.faults == second.faults
        assert FaultPlan.seeded(8, workers=3, max_layer=5).faults != (
            first.faults[:1]
        )


class TestFoldPath:
    """Respawn budget exhausted: the shard folds into the coordinator."""

    def test_fold_is_bit_identical(self):
        single = Universe(star_protocol(5))
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.kill(1, 3),
            supervision=SupervisionPolicy(
                heartbeat_timeout=5.0, poll_interval=0.02, max_respawns=0
            ),
        )
        assert_bit_identical(single, recovered)
        assert recovered.recovery_log[0]["action"] == "fold"

    def test_fold_at_first_layer(self):
        single = Universe(star_protocol(5))
        recovered = Universe(
            star_protocol(5),
            workers=3,
            fault_plan=FaultPlan.kill(0, 0),
            supervision=SupervisionPolicy(
                heartbeat_timeout=5.0, poll_interval=0.02, max_respawns=0
            ),
        )
        assert_bit_identical(single, recovered)

    def test_every_worker_folded(self):
        """Kill all workers: the coordinator finishes the run alone."""
        single = Universe(star_protocol(5))
        plan = FaultPlan((Fault("kill", 0, 1), Fault("kill", 1, 2)))
        recovered = Universe(
            star_protocol(5),
            workers=2,
            fault_plan=plan,
            supervision=SupervisionPolicy(
                heartbeat_timeout=5.0, poll_interval=0.02, max_respawns=0
            ),
        )
        assert_bit_identical(single, recovered)
        assert [event["action"] for event in recovered.recovery_log] == [
            "fold",
            "fold",
        ]


class TestFaultsWithBounds:
    def test_truncation_survives_a_kill(self):
        """Recovery composes with on_limit="truncate": same cut point."""
        single = Universe(
            star_protocol(6), max_configurations=500, on_limit="truncate"
        )
        recovered = Universe(
            star_protocol(6),
            max_configurations=500,
            on_limit="truncate",
            workers=2,
            fault_plan=FaultPlan.kill(0, 4),
            supervision=FAST,
        )
        assert not recovered.is_complete
        assert_bit_identical(single, recovered)

    def test_max_events_survives_a_kill(self):
        single = Universe(star_protocol(5), max_events=6)
        recovered = Universe(
            star_protocol(5),
            max_events=6,
            workers=2,
            fault_plan=FaultPlan.kill(1, 2),
            supervision=FAST,
        )
        assert_bit_identical(single, recovered)


class TestWorkerErrorPropagation:
    def test_original_traceback_reaches_the_caller(self):
        class Boom(SyncFailureMonitorProtocol):
            def enabled_events(self, configuration):
                if len(configuration) >= 2:
                    raise RuntimeError("intentional worker explosion")
                return super().enabled_events(configuration)

        with pytest.raises(WorkerError) as excinfo:
            Universe(Boom(rounds=2), workers=2)
        error = excinfo.value
        assert error.worker_type == "RuntimeError"
        assert "intentional worker explosion" in error.worker_traceback
        assert "enabled_events" in error.worker_traceback
        assert "original worker traceback" in str(error)

    def test_worker_error_is_a_universe_error(self):
        assert issubclass(WorkerError, UniverseError)

    def test_deterministic_errors_are_not_retried(self):
        class Boom(SyncFailureMonitorProtocol):
            def enabled_events(self, configuration):
                if len(configuration) >= 1:
                    raise ValueError("always fails")
                return super().enabled_events(configuration)

        try:
            Universe(Boom(rounds=1), workers=2)
        except WorkerError:
            pass
        # No respawn was attempted for an application error: spawning a
        # replacement would deterministically fail the same way.


class TestTeardownHygiene:
    def test_no_orphan_processes_after_success(self):
        Universe(star_protocol(5), workers=3)
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_no_orphans_after_recovery(self):
        Universe(
            star_protocol(5),
            workers=2,
            fault_plan=FaultPlan.kill(0, 3),
            supervision=FAST,
        )
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_no_orphans_after_worker_error(self):
        class Boom(SyncFailureMonitorProtocol):
            def enabled_events(self, configuration):
                if len(configuration) >= 2:
                    raise RuntimeError("boom")
                return super().enabled_events(configuration)

        with pytest.raises(WorkerError):
            Universe(Boom(rounds=2), workers=3)
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_no_fd_leak_across_explorations(self):
        def open_fds() -> int:
            return len(os.listdir("/proc/self/fd"))

        Universe(star_protocol(4), workers=2)  # warm imports / allocators
        before = open_fds()
        for _ in range(3):
            Universe(star_protocol(4), workers=2)
            Universe(
                star_protocol(4),
                workers=2,
                fault_plan=FaultPlan.kill(0, 1),
                supervision=FAST,
            )
        assert open_fds() <= before

    def test_coordinator_exception_still_tears_down(self, monkeypatch):
        """A coordinator-side exception mid-exploration (stand-in for
        KeyboardInterrupt) must reach the caller with every child
        reaped and both pipe ends closed."""
        original = ShardedExplorer._exchange_layer
        calls = {"count": 0}

        def explode(self, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 3:
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ShardedExplorer, "_exchange_layer", explode)
        with pytest.raises(KeyboardInterrupt):
            Universe(star_protocol(5), workers=2)
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.02)
        assert multiprocessing.active_children() == []


class TestFaultPlanApi:
    def test_unknown_kind_rejected(self):
        with pytest.raises(UniverseError, match="unknown fault kind"):
            Fault("explode", 0, 0)

    def test_negative_fields_rejected(self):
        with pytest.raises(UniverseError, match="shard must be >= 0"):
            Fault("kill", -1, 0)
        with pytest.raises(UniverseError, match="layer must be >= 0"):
            Fault("kill", 0, -1)
        with pytest.raises(UniverseError, match="delay must be >= 0"):
            Fault("delay_batch", 0, 0, -1.0)

    def test_plan_validates_shard_range(self):
        with pytest.raises(UniverseError, match="only 2 workers"):
            Universe(
                star_protocol(4),
                workers=2,
                fault_plan=FaultPlan.kill(5, 0),
            )

    def test_plan_requires_sharded_engine(self):
        with pytest.raises(UniverseError, match="workers >= 2"):
            Universe(star_protocol(4), fault_plan=FaultPlan.kill(0, 0))
        with pytest.raises(UniverseError, match="workers >= 2"):
            Universe(star_protocol(4), supervision=FAST)

    def test_faults_delivered_once(self):
        plan = FaultPlan.kill(0, 2)
        assert plan.take_for_shard(0) == [("kill", 2, 0.0)]
        assert plan.take_for_shard(0) == []  # replacement: not re-armed
        assert plan.take_for_shard(1) == []

    def test_all_kinds_named(self):
        assert set(FAULT_KINDS) == {
            "kill",
            "drop_batch",
            "delay_batch",
            "corrupt_batch",
            "torn_save",
            "corrupt_segment",
            "stall_write",
            "enospc",
            "eio_read",
            "eio_write",
            "fsync_fail",
            "slow_io",
            "fd_exhaust",
        }

    def test_repr_names_targets(self):
        assert "kill(w1@L3)" in repr(FaultPlan.kill(1, 3))


class TestSupervisionPolicyApi:
    def test_invalid_policies_rejected(self):
        with pytest.raises(UniverseError):
            SupervisionPolicy(heartbeat_timeout=0)
        with pytest.raises(UniverseError):
            SupervisionPolicy(poll_interval=-1)
        with pytest.raises(UniverseError):
            SupervisionPolicy(max_respawns=-1)
        with pytest.raises(UniverseError):
            SupervisionPolicy(heartbeat_parents=0)

    def test_default_respawn_budget_scales_with_workers(self):
        assert SupervisionPolicy().resolve_respawns(4) == 4
        assert SupervisionPolicy(max_respawns=1).resolve_respawns(4) == 1


class TestDiscoveryStreamReconstruction:
    def test_stream_replays_to_the_same_universe(self):
        """The failover replay source: reconstructing the stream from
        the CSR store and replaying it rebuilds the identical state."""
        from repro.universe.sharded import _Replica

        universe = Universe(star_protocol(5))
        stream = discovery_stream(
            universe._configurations,
            universe._succ_offsets,
            universe._succ_ids,
        )
        assert len(stream) == len(universe) - 1  # one record per discovery
        replica = _Replica(universe.protocol, None)
        replica.apply(stream)
        assert len(replica.configurations) == len(universe)
        for ours, theirs in zip(
            replica.configurations, universe._configurations
        ):
            assert ours == theirs
            assert ours._histories == theirs._histories
        assert replica.ids_by_hash == universe._ids_by_hash


class TestFaultSpecParsing:
    """The CLI grammar: ``kind[:shard]@layer[~seconds]``."""

    def test_worker_spec(self):
        plan = FaultPlan.parse(["kill:1@3"])
        (fault,) = plan.faults
        assert (fault.kind, fault.shard, fault.layer) == ("kill", 1, 3)

    def test_delay_spec_with_seconds(self):
        plan = FaultPlan.parse(["delay_batch:0@2~0.25"])
        (fault,) = plan.faults
        assert fault.kind == "delay_batch"
        assert fault.seconds == 0.25

    def test_checkpoint_spec_has_no_shard(self):
        plan = FaultPlan.parse(["torn_save@5", "corrupt_segment@2"])
        assert all(f.is_checkpoint and f.shard == -1 for f in plan.faults)
        assert [f.layer for f in plan.faults] == [5, 2]

    def test_missing_layer_rejected(self):
        with pytest.raises(UniverseError, match="bad fault spec"):
            FaultPlan.parse(["kill:0"])
        with pytest.raises(UniverseError, match="bad fault spec"):
            FaultPlan.parse(["kill:0@x"])

    def test_checkpoint_spec_with_shard_rejected(self):
        with pytest.raises(UniverseError, match="takes no shard"):
            FaultPlan.parse(["torn_save:0@5"])

    def test_worker_spec_without_shard_rejected(self):
        with pytest.raises(UniverseError, match="needs a shard"):
            FaultPlan.parse(["kill@3"])

    def test_bad_seconds_rejected(self):
        with pytest.raises(UniverseError, match="not a number"):
            FaultPlan.parse(["delay_batch:0@2~soon"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(UniverseError, match="unknown fault kind"):
            FaultPlan.parse(["explode:0@1"])


class TestCheckpointFaultPlans:
    def test_constructors_target_the_session_not_a_shard(self):
        for plan in (FaultPlan.torn_save(5), FaultPlan.corrupt_segment(3)):
            (fault,) = plan.faults
            assert fault.is_checkpoint
            assert fault.shard == -1
        assert "torn_save(@L5)" in repr(FaultPlan.torn_save(5))

    def test_kind_partition(self):
        mixed = FaultPlan.parse(["kill:0@1", "torn_save@2"])
        assert mixed.has_worker_faults
        assert mixed.has_checkpoint_faults
        assert not FaultPlan.torn_save(1).has_worker_faults
        assert not FaultPlan.kill(0, 1).has_checkpoint_faults

    def test_checkpoint_faults_fire_once(self):
        plan = FaultPlan.parse(["torn_save@2", "corrupt_segment@4"])
        assert sorted(plan.take_checkpoint_faults()) == [
            ("corrupt_segment", 4, 0.0),
            ("torn_save", 2, 0.0),
        ]
        assert plan.take_checkpoint_faults() == []  # not re-armed

    def test_worker_delivery_skips_checkpoint_faults(self):
        plan = FaultPlan.parse(["kill:0@1", "torn_save@2"])
        assert plan.take_for_shard(0) == [("kill", 1, 0.0)]
        assert plan.take_checkpoint_faults() == [("torn_save", 2, 0.0)]

    def test_seeded_draws_checkpoint_kinds(self):
        plan = FaultPlan.seeded(
            7, workers=2, max_layer=5, faults=4, kinds=("torn_save",)
        )
        assert len(plan) == 4
        assert all(f.is_checkpoint and f.shard == -1 for f in plan.faults)
        again = FaultPlan.seeded(
            7, workers=2, max_layer=5, faults=4, kinds=("torn_save",)
        )
        assert [f.as_wire() for f in plan.faults] == [
            f.as_wire() for f in again.faults
        ]

    def test_seeded_layer_sequence_stable_across_kinds(self):
        """Swapping the kind pool (same size) must not shift the seeded
        layer sequence — campaigns stay comparable across fault mixes."""
        kills = FaultPlan.seeded(3, workers=2, max_layer=9, faults=5)
        torn = FaultPlan.seeded(
            3, workers=2, max_layer=9, faults=5, kinds=("torn_save",)
        )
        assert [f.layer for f in kills.faults] == [f.layer for f in torn.faults]

    def test_checkpoint_fault_validation_ignores_workers(self):
        FaultPlan.torn_save(3).validate(workers=1)  # no shard to range-check


class TestSpawnRetry:
    """Transient worker-start failures retry with backoff."""

    RETRY_POLICY = SupervisionPolicy(
        heartbeat_timeout=5.0, poll_interval=0.02, spawn_backoff=0.001
    )

    @staticmethod
    def flaky_start(monkeypatch, failures, error_factory):
        """Patch fork-context Process.start to fail ``failures`` times."""
        from multiprocessing.context import ForkProcess

        original = ForkProcess.start
        calls = {"n": 0}

        def start(self):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error_factory()
            return original(self)

        monkeypatch.setattr(ForkProcess, "start", start)
        return calls

    def test_transient_error_classification(self):
        import errno

        from repro.universe.sharded import _transient_spawn_error

        assert _transient_spawn_error(OSError(errno.EAGAIN, "try again"))
        assert _transient_spawn_error(
            OSError(12345, "resource temporarily unavailable")
        )
        assert not _transient_spawn_error(OSError(errno.EPERM, "no"))

    def test_eagain_is_retried_and_logged(self, monkeypatch):
        import errno

        calls = self.flaky_start(
            monkeypatch,
            2,
            lambda: OSError(errno.EAGAIN, "Resource temporarily unavailable"),
        )
        single = Universe(star_protocol(5))
        universe = Universe(
            star_protocol(5), workers=2, supervision=self.RETRY_POLICY
        )
        assert_bit_identical(single, universe)
        retries = [
            entry
            for entry in universe.recovery_log
            if entry["kind"] == "spawn" and entry["action"] == "retry"
        ]
        assert len(retries) == 2
        assert calls["n"] >= 3

    def test_persistent_eagain_exhausts_the_budget(self, monkeypatch):
        import errno

        calls = self.flaky_start(
            monkeypatch,
            10**6,
            lambda: OSError(errno.EAGAIN, "Resource temporarily unavailable"),
        )
        with pytest.raises(OSError):
            Universe(
                star_protocol(4), workers=2, supervision=self.RETRY_POLICY
            )
        assert calls["n"] == self.RETRY_POLICY.spawn_attempts

    def test_non_transient_error_is_not_retried(self, monkeypatch):
        import errno

        calls = self.flaky_start(
            monkeypatch, 10**6, lambda: OSError(errno.EPERM, "denied")
        )
        with pytest.raises(OSError):
            Universe(
                star_protocol(4), workers=2, supervision=self.RETRY_POLICY
            )
        assert calls["n"] == 1

    def test_policy_validation(self):
        with pytest.raises(UniverseError, match="spawn_attempts"):
            SupervisionPolicy(spawn_attempts=0)
        with pytest.raises(UniverseError, match="spawn_backoff"):
            SupervisionPolicy(spawn_backoff=-0.1)
