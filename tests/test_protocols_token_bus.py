"""The token bus and the paper's §4.1 nested-knowledge example (E7)."""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import And, Knows, Not
from repro.protocols.token_bus import (
    TokenBusProtocol,
    check_paper_example,
    holds_token_atom,
    paper_example_formula,
)
from repro.universe.explorer import Universe


class TestProtocol:
    def test_single_token_invariant(self, token_bus_universe):
        """At most one station holds the token; exactly one when no token
        message is in flight."""
        protocol = token_bus_universe.protocol
        for configuration in token_bus_universe:
            holders = [
                station
                for station in protocol.stations
                if protocol.holds_token(station, configuration.history(station))
            ]
            if configuration.in_flight_messages:
                assert len(holders) == 0
            else:
                assert len(holders) == 1

    def test_token_starts_at_leftmost(self):
        protocol = TokenBusProtocol(max_hops=2)
        assert protocol.holds_token("p", ())
        assert not protocol.holds_token("q", ())

    def test_boundaries_have_one_neighbour(self):
        protocol = TokenBusProtocol(max_hops=1)
        assert protocol._neighbours("p") == ("q",)
        assert protocol._neighbours("t") == ("s",)
        assert protocol._neighbours("r") == ("q", "s")

    def test_hop_bound_limits_universe(self):
        small = Universe(TokenBusProtocol(max_hops=1))
        large = Universe(TokenBusProtocol(max_hops=3))
        assert len(small) < len(large)
        assert small.is_complete and large.is_complete

    def test_needs_two_stations(self):
        with pytest.raises(ValueError):
            TokenBusProtocol(stations=("solo",))

    def test_station_names_distinct(self):
        with pytest.raises(ValueError):
            TokenBusProtocol(stations=("a", "a", "b"))


class TestPaperExample:
    def test_formula_valid_on_three_hops(self, token_bus_universe):
        result = check_paper_example(token_bus_universe)
        assert result["valid"]
        assert result["r_holds_count"] > 0  # non-vacuous

    def test_formula_valid_on_four_hops(self):
        universe = Universe(TokenBusProtocol(max_hops=4))
        result = check_paper_example(universe)
        assert result["valid"]
        assert result["r_holds_count"] > 1  # r reachable two ways now

    def test_nested_knowledge_unpacked(self, token_bus_universe):
        """Check the two conjuncts separately at every r-holding config."""
        evaluator = KnowledgeEvaluator(token_bus_universe)
        protocol = token_bus_universe.protocol
        r_holds = holds_token_atom(protocol, "r")
        q_knows = Knows("q", Not(holds_token_atom(protocol, "p")))
        s_knows = Knows("s", Not(holds_token_atom(protocol, "t")))
        for configuration in evaluator.extension(r_holds):
            assert evaluator.holds(Knows("r", And(q_knows, s_knows)), configuration)

    def test_converse_is_false(self, token_bus_universe):
        """p does NOT always know whether r holds — the knowledge is
        specifically along the bus structure, not universal."""
        evaluator = KnowledgeEvaluator(token_bus_universe)
        protocol = token_bus_universe.protocol
        from repro.knowledge.formula import Sure

        assert not evaluator.is_valid(Sure("p", holds_token_atom(protocol, "r")))

    def test_formula_requires_five_stations(self):
        protocol = TokenBusProtocol(stations=("a", "b"), max_hops=1)
        with pytest.raises(ValueError):
            paper_example_formula(protocol)

    def test_check_requires_token_bus(self, pingpong_universe):
        with pytest.raises(TypeError):
            check_paper_example(pingpong_universe)
