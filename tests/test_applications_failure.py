"""§5(b) failure detection impossibility / timeout detection (E11)."""

import pytest

from repro.applications.failure_detection import analyse_async, analyse_sync
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def async_universe():
    return Universe(AsyncFailureMonitorProtocol(heartbeats=2))


@pytest.fixture(scope="module")
def sync_universe():
    return Universe(SyncFailureMonitorProtocol(rounds=2))


class TestAsyncImpossibility:
    def test_impossibility_holds(self, async_universe):
        report = analyse_async(async_universe)
        assert report.impossibility_holds
        assert report.monitor_never_sure
        assert report.crash_configurations > 0

    def test_hypotheses_of_the_paper_argument(self, async_universe):
        """The §5(b) proof rests on crash being local to the worker."""
        report = analyse_async(async_universe)
        assert report.crash_local_to_worker

    def test_more_heartbeats_do_not_help(self):
        for heartbeats in (0, 1, 3):
            universe = Universe(AsyncFailureMonitorProtocol(heartbeats=heartbeats))
            report = analyse_async(universe)
            assert report.monitor_never_sure

    def test_wrong_universe_rejected(self, pingpong_universe):
        with pytest.raises(TypeError):
            analyse_async(pingpong_universe)


class TestSyncDetection:
    def test_detection_possible_and_sound(self, sync_universe):
        report = analyse_sync(sync_universe)
        assert report.detection_possible
        assert report.detection_sound
        assert 0 < report.detection_configurations < report.universe_size

    def test_one_round_suffices(self):
        universe = Universe(SyncFailureMonitorProtocol(rounds=1))
        report = analyse_sync(universe)
        assert report.detection_possible

    def test_wrong_universe_rejected(self, pingpong_universe):
        with pytest.raises(TypeError):
            analyse_sync(pingpong_universe)
