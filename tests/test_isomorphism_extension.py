"""The Principle of Computation Extension and Theorem 3 (§3.4)."""

from repro.isomorphism.extension import (
    check_extension_corollary,
    check_extension_principle_part1,
    check_extension_principle_part2,
    check_theorem_3,
    extension_event,
    related_set,
)


class TestExtensionEvent:
    def test_identifies_the_added_event(self, pingpong_universe):
        for x in pingpong_universe:
            for extended in pingpong_universe.successors(x):
                event = extension_event(x, extended)
                assert event is not None
                assert x.extend(event) == extended

    def test_none_for_unrelated_configurations(self, pingpong_universe):
        configs = list(pingpong_universe)
        same_size = [c for c in configs if len(c) == 2]
        if len(same_size) >= 2:
            assert extension_event(same_size[0], same_size[1]) is None


class TestExtensionPrinciple:
    def test_part1_on_pingpong(self, pingpong_universe):
        assert check_extension_principle_part1(pingpong_universe) > 0

    def test_part2_on_pingpong(self, pingpong_universe):
        assert check_extension_principle_part2(pingpong_universe) > 0

    def test_corollary_on_pingpong(self, pingpong_universe):
        assert check_extension_corollary(pingpong_universe) > 0

    def test_part1_on_broadcast(self, broadcast_universe):
        assert check_extension_principle_part1(broadcast_universe) > 0

    def test_part2_on_broadcast(self, broadcast_universe):
        assert check_extension_principle_part2(broadcast_universe) > 0


class TestTheorem3:
    def test_pingpong_semantics(self, pingpong_universe):
        counts = check_theorem_3(pingpong_universe)
        assert counts["receive"] > 0
        assert counts["send"] > 0

    def test_broadcast_semantics_includes_internal(self, broadcast_universe):
        counts = check_theorem_3(broadcast_universe)
        assert counts["internal"] > 0
        assert counts["receive"] > 0
        assert counts["send"] > 0

    def test_receive_strictly_shrinks_somewhere(self, pingpong_universe):
        """Theorem 3's intuition: receives rule out computations that lack
        the corresponding send.  At least one receive must *strictly*
        shrink the related set."""
        from repro.isomorphism.extension import extension_event

        shrank = False
        for x in pingpong_universe:
            for extended in pingpong_universe.successors(x):
                event = extension_event(x, extended)
                if event is None or not event.is_receive:
                    continue
                before = related_set(pingpong_universe, x, {event.process})
                after = related_set(pingpong_universe, extended, {event.process})
                if len(after) < len(before):
                    shrank = True
        assert shrank

    def test_larger_sets_also_respect_theorem_3(self, pingpong_universe):
        counts = check_theorem_3(
            pingpong_universe, process_sets=[{"p"}, {"q"}, {"p", "q"}]
        )
        assert sum(counts.values()) > 0
