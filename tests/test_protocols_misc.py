"""Ping-pong, toggle and Chang–Roberts protocol behaviour."""

import pytest

from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.toggle import ToggleProtocol, bit_atom
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


class TestPingPong:
    def test_universe_sizes_grow_linearly(self):
        sizes = [len(Universe(PingPongProtocol(rounds=r))) for r in (0, 1, 2, 3)]
        assert sizes == [1, 5, 9, 13]

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            PingPongProtocol(rounds=-1)

    def test_strict_alternation(self):
        trace = simulate(PingPongProtocol(rounds=3), RandomScheduler(0))
        tags = [
            event.message.tag for event in trace.computation if event.is_send
        ]
        assert tags == ["ping", "pong", "ping", "pong", "ping", "pong"]


class TestToggle:
    def test_bit_follows_flips(self):
        protocol = ToggleProtocol(max_flips=3)
        universe = Universe(protocol)
        atom = bit_atom(protocol)
        for configuration in universe:
            flips = sum(
                1
                for event in configuration.history(protocol.owner)
                if getattr(event, "tag", None) == "flip"
            )
            assert atom.fn(configuration) == (flips % 2 == 1)

    def test_reports_carry_the_new_value(self):
        protocol = ToggleProtocol(max_flips=2, report=True)
        trace = simulate(protocol, RandomScheduler(1))
        for event in trace.computation:
            if event.is_send:
                assert isinstance(event.message.payload, bool)

    def test_reportless_variant(self):
        protocol = ToggleProtocol(max_flips=2, report=False)
        trace = simulate(protocol, RandomScheduler(0))
        assert trace.count_messages() == 0
        assert trace.count_internal("flip") == 2


class TestChangRoberts:
    @pytest.mark.parametrize("seed", range(5))
    def test_highest_rank_wins(self, seed):
        ring = tuple(f"n{i}" for i in range(6))
        protocol = ChangRobertsProtocol(ring)
        trace = simulate(protocol, RandomScheduler(seed))
        assert protocol.elected_leader(trace.final_configuration) == "n5"

    def test_custom_ranks(self):
        ring = ("a", "b", "c")
        protocol = ChangRobertsProtocol(ring, ranks={"a": 10, "b": 1, "c": 2})
        trace = simulate(protocol, RandomScheduler(0))
        assert protocol.elected_leader(trace.final_configuration) == "a"

    def test_exactly_one_leader(self):
        ring = tuple(f"n{i}" for i in range(5))
        protocol = ChangRobertsProtocol(ring)
        trace = simulate(protocol, RandomScheduler(2))
        final = trace.final_configuration
        announcements = sum(
            1
            for process in ring
            if protocol.has_announced(final.history(process))
        )
        assert announcements == 1

    def test_message_complexity_bounds(self):
        """n log n average, n^2 worst case, at least 2n - 1... the basic
        sanity envelope: winner's id travels the whole ring."""
        ring = tuple(f"n{i}" for i in range(6))
        protocol = ChangRobertsProtocol(ring)
        trace = simulate(protocol, RandomScheduler(0))
        count = protocol.message_count(trace.final_configuration)
        assert len(ring) <= count <= len(ring) ** 2

    def test_worst_case_descending_ranks(self):
        ring = ("a", "b", "c", "d")
        ranks = {"a": 4, "b": 3, "c": 2, "d": 1}
        protocol = ChangRobertsProtocol(ring, ranks=ranks)
        trace = simulate(protocol, RandomScheduler(1))
        # Descending order: i-th candidate travels i hops -> n(n+1)/2.
        assert protocol.message_count(trace.final_configuration) == 4 + 3 + 2 + 1

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ChangRobertsProtocol(("solo",))
        with pytest.raises(ValueError):
            ChangRobertsProtocol(("a", "b"), ranks={"a": 1})
        with pytest.raises(ValueError):
            ChangRobertsProtocol(("a", "b"), ranks={"a": 1, "b": 1})
