"""Consistent cuts and the cut lattice."""

from repro.causality.cuts import (
    consistent_cuts,
    count_consistent_cuts,
    cut_join,
    cut_meet,
    cut_of_vector,
    cut_vector,
    is_consistent_cut,
    is_lattice_closed,
)
from repro.core.computation import computation_of
from repro.core.configuration import Configuration
from repro.core.events import internal, message_pair
from repro.protocols.pingpong import PingPongProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate


def base_config() -> Configuration:
    snd, rcv = message_pair("p", "q", "m")
    a = internal("p", tag="a")
    b = internal("q", tag="b")
    return Configuration.from_computation(computation_of(snd, rcv, a, b))


class TestEnumeration:
    def test_counts_message_constraint(self):
        """p: snd, a; q: rcv, b — the rcv needs the snd: 3*3 - blocked."""
        base = base_config()
        cuts = list(consistent_cuts(base))
        # Vectors (i, j) with i in 0..2, j in 0..2, minus those where the
        # receive (j >= 1) lacks the send (i == 0): 9 - 2 = 7... but the
        # receive is q's FIRST event, so j>=1 needs i>=1: 9 - 2 = 7.
        assert len(cuts) == 7
        assert count_consistent_cuts(base) == 7

    def test_all_enumerated_cuts_are_consistent(self):
        base = base_config()
        for cut in consistent_cuts(base):
            assert is_consistent_cut(base, cut)

    def test_inconsistent_cut_detected(self):
        base = base_config()
        bad = Configuration({"q": base.history("q")[:1]})  # rcv without snd
        assert not is_consistent_cut(base, bad)

    def test_non_prefix_rejected(self):
        base = base_config()
        foreign = Configuration({"p": (internal("p", tag="zzz"),)})
        assert not is_consistent_cut(base, foreign)


class TestLattice:
    def test_meet_and_join(self):
        base = base_config()
        first = cut_of_vector(base, {"p": 2, "q": 0})
        second = cut_of_vector(base, {"p": 1, "q": 1})
        meet = cut_meet(base, first, second)
        join = cut_join(base, first, second)
        assert cut_vector(meet, ("p", "q")) == {"p": 1, "q": 0}
        assert cut_vector(join, ("p", "q")) == {"p": 2, "q": 1}

    def test_lattice_closure(self):
        assert is_lattice_closed(base_config())

    def test_lattice_closure_on_simulated_run(self):
        trace = simulate(PingPongProtocol(rounds=2), RandomScheduler(1))
        assert is_lattice_closed(trace.final_configuration)

    def test_cut_vector_round_trip(self):
        base = base_config()
        for cut in consistent_cuts(base):
            vector = cut_vector(cut, ("p", "q"))
            assert cut_of_vector(base, vector) == cut


class TestAgainstUniverse:
    def test_cuts_coincide_with_reachable_sub_configurations(
        self, pingpong_universe
    ):
        """For protocol universes, the consistent cuts of any reachable
        configuration are exactly its reachable sub-configurations."""
        maximal = max(pingpong_universe, key=len)
        cuts = set(consistent_cuts(maximal))
        reachable = {
            configuration
            for configuration in pingpong_universe
            if configuration.is_sub_configuration_of(maximal)
        }
        assert cuts == reachable
