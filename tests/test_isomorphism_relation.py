"""Unit tests for [P] and composed relations (§3), incl. Example 1."""

from repro.core.configuration import Configuration
from repro.isomorphism.relation import (
    agreement_set,
    composed_class,
    composed_isomorphic,
    find_composition_witness,
    isomorphic,
)
from repro.universe.builder import figure_3_1_computations, figure_3_1_universe


class TestDirectRelation:
    def test_figure_3_1_direct_relations(self):
        comps = figure_3_1_computations()
        assert isomorphic(comps["x"], comps["y"], "p")
        assert not isomorphic(comps["x"], comps["y"], "q")
        assert isomorphic(comps["x"], comps["z"], {"p", "q"})
        assert isomorphic(comps["z"], comps["w"], "q")
        assert not isomorphic(comps["y"], comps["w"], "p")
        assert not isomorphic(comps["y"], comps["w"], "q")

    def test_empty_set_relates_everything(self):
        comps = figure_3_1_computations()
        assert isomorphic(comps["y"], comps["w"], frozenset())

    def test_d_relation_means_permutation(self):
        comps = figure_3_1_computations()
        assert comps["x"] != comps["z"]
        assert comps["x"].is_permutation_of(comps["z"])

    def test_mixed_computation_and_configuration(self):
        comps = figure_3_1_computations()
        config = Configuration.from_computation(comps["x"])
        assert isomorphic(config, comps["z"], {"p", "q"})

    def test_agreement_set(self):
        comps = figure_3_1_computations()
        assert agreement_set(comps["x"], comps["y"]) == {"p"}
        assert agreement_set(comps["x"], comps["z"]) == {"p", "q"}
        assert agreement_set(comps["y"], comps["w"]) == frozenset()


class TestComposedRelation:
    def test_example_1_indirect_relationship(self):
        """y [p q] w via z, and w [q p] y by inversion."""
        universe = figure_3_1_universe()
        comps = figure_3_1_computations()
        y = Configuration.from_computation(comps["y"])
        w = Configuration.from_computation(comps["w"])
        z = Configuration.from_computation(comps["z"])
        assert composed_isomorphic(universe, y, ["p", "q"], w)
        assert composed_isomorphic(universe, w, ["q", "p"], y)
        assert composed_isomorphic(universe, y, ["q", "p"], z)
        assert composed_isomorphic(universe, y, ["q", "p", "q"], z)

    def test_empty_sequence_is_identity(self):
        universe = figure_3_1_universe()
        comps = figure_3_1_computations()
        x = Configuration.from_computation(comps["x"])
        y = Configuration.from_computation(comps["y"])
        assert composed_isomorphic(universe, x, [], x)
        assert not composed_isomorphic(universe, x, [], y)

    def test_composed_class_contains_iso_class(self, pingpong_universe):
        for configuration in pingpong_universe:
            direct = set(pingpong_universe.iso_class(configuration, {"p"}))
            composed = composed_class(pingpong_universe, configuration, [{"p"}])
            assert direct == set(composed)

    def test_witness_chains_through_intermediates(self):
        universe = figure_3_1_universe()
        comps = figure_3_1_computations()
        y = Configuration.from_computation(comps["y"])
        w = Configuration.from_computation(comps["w"])
        witness = find_composition_witness(universe, y, ["p", "q"], w)
        assert witness is not None
        assert witness[0] == y and witness[-1] == w
        assert isomorphic(witness[0], witness[1], "p")
        assert isomorphic(witness[1], witness[2], "q")

    def test_witness_none_when_unrelated(self):
        universe = figure_3_1_universe()
        comps = figure_3_1_computations()
        y = Configuration.from_computation(comps["y"])
        w = Configuration.from_computation(comps["w"])
        assert find_composition_witness(universe, y, ["q"], w) is None
