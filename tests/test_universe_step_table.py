"""Compiled step tables and the exploration kernel vs. their oracles.

The exploration kernel enables events through
:meth:`Protocol.compiled_enabled_events` — compiled, shape-keyed step
tables plus the memoised receive set — while :meth:`Protocol.enabled_events`
remains the independently-memoised oracle.  These tests pin the
bit-identity (same events, same order) on every bundled protocol, over
complete *and* truncated universes, and check the CSR successor store
against a from-scratch reference BFS.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import EMPTY_CONFIGURATION
from repro.protocols.broadcast import (
    BroadcastProtocol,
    line_topology,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.protocols.dijkstra_scholten import DijkstraScholtenProtocol
from repro.protocols.mutex import TokenRingMutexProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.termination import generate_workload
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.explorer import Universe
from repro.universe.protocol import Protocol


def bundled_protocols():
    return [
        ("star", BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")),
        ("line", BroadcastProtocol(line_topology(("a", "b", "c")), "a")),
        ("ring", BroadcastProtocol(ring_topology(("r0", "r1", "r2", "r3")), "r0")),
        (
            "tree",
            BroadcastProtocol(
                tree_topology(tuple(f"t{i}" for i in range(7))), "t0"
            ),
        ),
        ("token_bus", TokenBusProtocol(max_hops=4)),
        ("pingpong", PingPongProtocol(rounds=2)),
        ("mutex", TokenRingMutexProtocol(max_hops=3)),
        (
            "dijkstra_scholten",
            DijkstraScholtenProtocol(
                generate_workload(("a", "b", "c"), seed=1, activations_per_process=1)
            ),
        ),
    ]


class TestCompiledStepTableOracle:
    @pytest.mark.parametrize(
        "label,protocol", bundled_protocols(), ids=[p[0] for p in bundled_protocols()]
    )
    def test_bit_identical_to_enabled_events_oracle(self, label, protocol):
        """Table-driven enabling == the oracle on every configuration of
        the complete universe (same events, same order)."""
        universe = Universe(protocol)
        assert universe.is_complete
        for configuration in universe:
            assert protocol.compiled_enabled_events(configuration) == tuple(
                protocol.enabled_events(configuration)
            )

    @pytest.mark.parametrize(
        "label,protocol",
        [
            (
                "star_truncated",
                BroadcastProtocol(
                    star_topology("hub", ("w", "x", "y", "z")), "hub"
                ),
            ),
            ("token_bus_truncated", TokenBusProtocol(max_hops=6)),
        ],
    )
    def test_bit_identical_on_truncated_universes(self, label, protocol):
        universe = Universe(protocol, max_events=4)
        assert not universe.is_complete
        for configuration in universe:
            assert protocol.compiled_enabled_events(configuration) == tuple(
                protocol.enabled_events(configuration)
            )

    def test_shape_memo_is_exercised(self):
        """Shaped protocols must actually collapse histories onto shared
        shapes (otherwise the compiled table silently degrades to
        exact-history keying)."""
        protocol = BroadcastProtocol(
            star_topology("hub", ("w", "x", "y", "z")), "hub"
        )
        universe = Universe(protocol)
        table = protocol.step_table
        assert table.shape_hits > 0
        assert table.compiled_entries < sum(
            len(per) for per in table._by_history.values()
        )
        del universe

    def test_shape_contract_against_direct_local_steps(self):
        """Equal shapes ⟹ equal step tuples, checked per history against
        an uncached local_steps call."""
        protocol = TokenBusProtocol(max_hops=4)
        universe = Universe(protocol)
        by_shape: dict[tuple, dict[object, tuple]] = {}
        for configuration in universe:
            for process in protocol.ordered_processes:
                history = configuration.history(process)
                shape = protocol.step_shape(process, history)
                steps = tuple(protocol.local_steps(process, history))
                seen = by_shape.setdefault((process,), {})
                if shape in seen:
                    assert seen[shape] == steps
                else:
                    seen[shape] = steps

    def test_build_time_instrumentation(self):
        protocol = PingPongProtocol(rounds=2)
        Universe(protocol)
        table = protocol.step_table
        assert table.build_seconds >= 0.0
        assert table.compiled_entries > 0

    def test_enabling_filter_protocols_ride_the_table(self):
        """The sync failure monitor expresses its synchrony restriction
        as a declarative enabling *filter*, so it is no longer a
        custom-enabling protocol — it rides the compiled step tables,
        and the compiled path stays equivalent to the ``enabled_events``
        oracle on every configuration."""
        from repro.protocols.failure_monitor import SyncFailureMonitorProtocol

        protocol = SyncFailureMonitorProtocol(rounds=1)
        assert not protocol.has_custom_enabling
        assert protocol.has_enabling_filter
        universe = Universe(protocol)
        for configuration in universe:
            assert protocol.compiled_enabled_events(configuration) == tuple(
                protocol.enabled_events(configuration)
            )

    def test_enabling_filter_universe_matches_pre_filter_exploration(self):
        """The filtered kernel fast path discovers exactly the universe
        the enabled_events oracle defines (size + successor structure),
        in both engines and both stores."""
        from repro.protocols.failure_monitor import SyncFailureMonitorProtocol

        reference = Universe(SyncFailureMonitorProtocol(rounds=2))
        for kwargs in ({"store": "arena"}, {"workers": 2}):
            other = Universe(SyncFailureMonitorProtocol(rounds=2), **kwargs)
            assert len(other) == len(reference)
            assert other._succ_offsets == reference._succ_offsets
            assert other._succ_ids == reference._succ_ids


class TestCSRSuccessorStore:
    def reference_bfs(self, protocol: Protocol):
        """From-scratch BFS over interned extend — the pre-CSR store."""
        configurations = [EMPTY_CONFIGURATION]
        ids = {EMPTY_CONFIGURATION: 0}
        successor_lists: list[list[int]] = [[]]
        cursor = 0
        while cursor < len(configurations):
            current = configurations[cursor]
            row = successor_lists[cursor]
            cursor += 1
            for event in protocol.enabled_events(current):
                child = current.extend(event)
                child_id = ids.get(child)
                if child_id is None:
                    child_id = len(configurations)
                    ids[child] = child_id
                    configurations.append(child)
                    successor_lists.append([])
                row.append(child_id)
        return configurations, successor_lists

    @pytest.mark.parametrize(
        "protocol",
        [
            PingPongProtocol(rounds=2),
            BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub"),
            TokenRingMutexProtocol(max_hops=3),
        ],
    )
    def test_csr_matches_reference_store(self, protocol):
        """Same configurations, same ids, same successor rows (order
        included) as the reference id-list store."""
        universe = Universe(protocol)
        configurations, successor_lists = self.reference_bfs(protocol)
        assert list(universe.configurations) == configurations
        offsets = universe._succ_offsets
        ids = universe._succ_ids
        assert len(offsets) == len(universe) + 1
        for index, row in enumerate(successor_lists):
            assert list(ids[offsets[index] : offsets[index + 1]]) == row

    def test_offsets_invariants(self, pingpong_universe):
        offsets = pingpong_universe._succ_offsets
        assert offsets[0] == 0
        assert list(offsets) == sorted(offsets)  # monotone
        assert offsets[-1] == len(pingpong_universe._succ_ids)

    def test_successor_api_unchanged(self, pingpong_universe):
        for configuration in pingpong_universe:
            for successor in pingpong_universe.successors(configuration):
                assert len(successor) == len(configuration) + 1
                assert configuration.is_sub_configuration_of(successor)


class TestStreamingMode:
    def test_default_still_raises(self):
        from repro.core.errors import UniverseError

        with pytest.raises(UniverseError):
            Universe(PingPongProtocol(rounds=4), max_configurations=3)

    def test_truncate_returns_partial_universe(self):
        universe = Universe(
            PingPongProtocol(rounds=4),
            max_configurations=3,
            on_limit="truncate",
        )
        assert len(universe) == 3
        assert not universe.is_complete
        # The partial universe stays fully usable.
        assert universe._succ_offsets[-1] == len(universe._succ_ids)
        assert len(universe._succ_offsets) == len(universe) + 1
        for configuration in universe:
            assert universe.config_id(configuration) >= 0
            universe.successors(configuration)
        table = universe.partition_table(frozenset({"p"}))
        assert table.size == 3

    def test_truncated_prefix_matches_full_exploration(self):
        """Streaming keeps exactly the BFS prefix of the full universe."""
        full = Universe(PingPongProtocol(rounds=4))
        partial = Universe(
            PingPongProtocol(rounds=4),
            max_configurations=5,
            on_limit="truncate",
        )
        assert list(partial.configurations) == list(full.configurations)[:5]

    def test_invalid_on_limit_rejected(self):
        from repro.core.errors import UniverseError

        with pytest.raises(UniverseError):
            Universe(PingPongProtocol(rounds=1), on_limit="explode")

    def test_non_positive_bound_still_fires(self):
        """max_configurations=0 must bound on the first discovered child
        (the pre-CSR behaviour), not silently disable the safety valve."""
        from repro.core.errors import UniverseError

        with pytest.raises(UniverseError):
            Universe(PingPongProtocol(rounds=2), max_configurations=0)
        truncated = Universe(
            PingPongProtocol(rounds=2),
            max_configurations=0,
            on_limit="truncate",
        )
        assert len(truncated) == 1  # just the empty configuration
        assert not truncated.is_complete
