"""Mask engine vs object-level reference oracles, bit for bit.

The composed-relation pipelines and the ten property checkers now run on
partition tables and bitmasks; the pre-mask implementations are retained
in :mod:`repro.isomorphism.reference` as oracles.  These tests assert
both agree on three protocols (star broadcast, token bus, ping-pong) and
on a truncated — hence incomplete — universe.
"""

import pytest

from repro.isomorphism import reference
from repro.isomorphism.algebra import (
    check_all_properties,
    check_containment,
    sequences_equal,
)
from repro.isomorphism.relation import (
    composed_class,
    composed_isomorphic,
    find_composition_witness,
    isomorphic,
)
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def star_universe() -> Universe:
    return Universe(
        BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")
    )


@pytest.fixture(scope="module")
def truncated_universe() -> Universe:
    universe = Universe(
        BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub"),
        max_events=4,
    )
    assert not universe.is_complete
    return universe


@pytest.fixture(scope="module")
def token_universe() -> Universe:
    return Universe(TokenBusProtocol(max_hops=3))


@pytest.fixture(scope="module")
def pingpong() -> Universe:
    return Universe(PingPongProtocol(rounds=2))


def chains_of(universe):
    processes = sorted(universe.processes)
    first = frozenset({processes[0]})
    last = frozenset({processes[-1]})
    return [
        [],
        [first],
        [first, last],
        [last, first, last],
        [frozenset(processes)],
    ]


ALL_UNIVERSES = ["star_universe", "token_universe", "pingpong", "truncated_universe"]


@pytest.mark.parametrize("universe_name", ALL_UNIVERSES)
class TestComposedRelationOracle:
    def test_composed_class_bit_identical(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        for sets in chains_of(universe):
            if not sets:
                continue
            for x in universe:
                assert composed_class(
                    universe, x, sets
                ) == reference.composed_class_reference(universe, x, sets)

    def test_composed_isomorphic_agrees(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        sample = list(universe)[:: max(1, len(universe) // 12)]
        for sets in chains_of(universe):
            for x in sample:
                for z in sample:
                    assert composed_isomorphic(
                        universe, x, sets, z
                    ) == reference.composed_isomorphic_reference(
                        universe, x, sets, z
                    )

    def test_witness_existence_and_validity(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        sample = list(universe)[:: max(1, len(universe) // 10)]
        for sets in chains_of(universe):
            for x in sample:
                for z in sample:
                    witness = find_composition_witness(universe, x, sets, z)
                    expected = reference.find_composition_witness_reference(
                        universe, x, sets, z
                    )
                    assert (witness is None) == (expected is None)
                    if witness is None:
                        continue
                    assert witness[0] == x and witness[-1] == z
                    assert len(witness) == len(sets) + 1
                    for step, entry in enumerate(sets):
                        assert isomorphic(witness[step], witness[step + 1], entry)


@pytest.mark.parametrize("universe_name", ALL_UNIVERSES)
class TestPropertyCheckersOracle:
    def test_verdicts_match_reference_sweep(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        mask_verdicts = check_all_properties(universe, max_sets=4)
        object_verdicts = reference.check_all_properties_reference(
            universe, max_sets=4
        )
        assert mask_verdicts == object_verdicts

    def test_individual_checkers_match(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        processes = sorted(universe.processes)
        first = frozenset({processes[0]})
        last = frozenset({processes[-1]})
        both = first | last
        pairs = [(first, last), (both, first), (first, both), (first, first)]
        for p_set, q_set in pairs:
            assert reference.check_containment_reference(
                universe, p_set, q_set
            ) == check_containment(universe, p_set, q_set)

    def test_sequences_equal_matches_reference(self, universe_name, request):
        universe = request.getfixturevalue(universe_name)
        processes = sorted(universe.processes)
        first = frozenset({processes[0]})
        last = frozenset({processes[-1]})
        both = first | last
        cases = [
            ([first, first], [first]),
            ([both, first], [first]),
            ([first], [last]),
            ([first, last], [last, first]),
            ([], [first]),
            ([both], [first, last]),
        ]
        for left, right in cases:
            assert sequences_equal(
                universe, left, right
            ) == reference.sequences_equal_reference(universe, left, right)
