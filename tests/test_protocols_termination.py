"""Diffusing computations: workloads, determinism, termination predicate."""

import pytest

from repro.protocols.termination import (
    Activation,
    DiffusingComputationProtocol,
    TerminationWorkload,
    generate_workload,
)
from repro.simulation.scheduler import (
    EagerReceiveScheduler,
    LazyReceiveScheduler,
    RandomScheduler,
)
from repro.simulation.simulator import simulate


def simple_workload() -> TerminationWorkload:
    return TerminationWorkload(
        processes=("a", "b", "c"),
        root="a",
        plans={
            "a": (Activation(("b", "c")),),
            "b": (Activation(("c",)),),
            "c": (Activation(()), Activation(())),
        },
    )


class TestWorkload:
    def test_total_messages_is_schedule_independent(self):
        workload = simple_workload()
        expected = workload.total_work_messages()
        assert expected == 3  # a->b, a->c, b->c
        for scheduler in (
            RandomScheduler(0),
            RandomScheduler(5),
            EagerReceiveScheduler(),
            LazyReceiveScheduler(),
        ):
            trace = simulate(DiffusingComputationProtocol(workload), scheduler)
            assert trace.count_messages("work") == expected

    def test_root_must_be_a_process(self):
        with pytest.raises(ValueError):
            TerminationWorkload(processes=("a",), root="zebra")

    def test_targets_must_be_processes(self):
        with pytest.raises(ValueError):
            TerminationWorkload(
                processes=("a",), root="a", plans={"a": (Activation(("x",)),)}
            )

    def test_generated_workloads_are_reproducible(self):
        first = generate_workload(("a", "b", "c"), seed=9)
        second = generate_workload(("a", "b", "c"), seed=9)
        assert first == second

    def test_generated_workloads_are_nontrivial(self):
        for seed in range(10):
            workload = generate_workload(("a", "b", "c", "d"), seed=seed)
            assert workload.total_work_messages() >= 1

    def test_activation_beyond_plan_is_empty(self):
        workload = simple_workload()
        assert workload.activation("a", 99) == Activation(())


class TestExecution:
    def test_runs_terminate(self):
        workload = simple_workload()
        trace = simulate(DiffusingComputationProtocol(workload), RandomScheduler(1))
        protocol = DiffusingComputationProtocol(workload)
        assert protocol.is_terminated(trace.final_configuration)

    def test_termination_is_stable(self):
        """Once terminated, always terminated (no spontaneous wakeups)."""
        workload = simple_workload()
        protocol = DiffusingComputationProtocol(workload)
        trace = simulate(protocol, RandomScheduler(4))
        seen_terminated = False
        for configuration in trace.configurations():
            terminated = protocol.is_terminated(configuration)
            if seen_terminated:
                assert terminated
            seen_terminated = terminated

    def test_not_terminated_while_messages_in_flight(self):
        workload = simple_workload()
        protocol = DiffusingComputationProtocol(workload)
        trace = simulate(protocol, RandomScheduler(2))
        for configuration in trace.configurations():
            if any(
                message.tag == "work"
                for message in configuration.in_flight_messages
            ):
                assert not protocol.is_terminated(configuration)

    def test_underlying_state_consistency(self):
        workload = simple_workload()
        protocol = DiffusingComputationProtocol(workload)
        trace = simulate(protocol, RandomScheduler(3))
        final = trace.final_configuration
        for process in workload.processes:
            state = protocol.underlying_state(process, final.history(process))
            assert not state.active
            assert state.triggered == state.completed
