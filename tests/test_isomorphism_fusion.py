"""Fusion of computations — Lemma 1 and Theorem 2 (§3.3)."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import FusionError
from repro.core.validation import is_valid_configuration
from repro.isomorphism.fusion import fuse, fuse_disjoint, fusion_side_conditions
from repro.isomorphism.relation import isomorphic
from repro.core.computation import computation_of
from repro.core.events import internal, message_pair


def config(*events) -> Configuration:
    return Configuration.from_computation(computation_of(*events))


class TestLemma1:
    def test_independent_suffixes_fuse(self):
        """(x;E) and (x;Ē) fuse to (x;E;Ē) — the §3.3 observation."""
        base = internal("p", tag="base")
        on_p = internal("p", tag="extra")
        on_q = internal("q", tag="extra")
        x = config(base)
        y = config(base, on_q)  # extends x only on q = P̄ (P = {p})
        z = config(base, on_p)  # extends x only on p = Q̄ (Q = {q})
        w = fuse_disjoint(x, y, z, "p", "q", {"p", "q"})
        assert w == config(base, on_p, on_q)
        assert isomorphic(y, w, "q")
        assert isomorphic(z, w, "p")

    def test_requires_covering_sets(self):
        x = config()
        with pytest.raises(FusionError):
            fuse_disjoint(x, x, x, "p", "p", {"p", "q"})

    def test_requires_isomorphism_hypotheses(self):
        on_p = internal("p", tag="extra")
        x = config()
        y = config(on_p)  # changes p, so not x [p] y
        with pytest.raises(FusionError):
            fuse_disjoint(x, y, x, "p", "q", {"p", "q"})


class TestTheorem2:
    def test_fusion_over_universe(self, pingpong_universe):
        """Whenever the side conditions hold, the fused computation is a
        valid member of the computation space."""
        universe = pingpong_universe
        fused_count = 0
        for x, y in universe.sub_configuration_pairs():
            for z in universe:
                if not x.is_sub_configuration_of(z):
                    continue
                problems = fusion_side_conditions(x, y, z, {"p"}, universe.processes)
                if problems:
                    continue
                w = fuse(x, y, z, {"p"}, universe.processes)
                fused_count += 1
                assert isomorphic(y, w, {"p"})
                assert isomorphic(z, w, {"q"})
                assert x.is_sub_configuration_of(w)
                assert is_valid_configuration(w)
                # Closure: the fused computation is itself reachable.
                assert w in universe
        assert fused_count > 0

    def test_fusion_over_broadcast_universe(self, broadcast_universe):
        universe = broadcast_universe
        p_set = frozenset({"a"})
        complement = universe.complement(p_set)
        fused_count = 0
        for x, y in universe.sub_configuration_pairs():
            for z in universe:
                if not x.is_sub_configuration_of(z):
                    continue
                if fusion_side_conditions(x, y, z, p_set, universe.processes):
                    continue
                w = fuse(x, y, z, p_set, universe.processes)
                fused_count += 1
                assert isomorphic(y, w, p_set)
                assert isomorphic(z, w, complement)
        assert fused_count > 0

    def test_violated_conditions_reported(self):
        """A chain <P̄ P> in (x, y) blocks the fusion."""
        snd, rcv = message_pair("q", "p", "m")
        x = config()
        y = config(snd, rcv)  # chain <q p> = <P̄ P> in the suffix
        z = config()
        problems = fusion_side_conditions(x, y, z, "p", {"p", "q"})
        assert any("<P̄ P>" in problem for problem in problems)
        with pytest.raises(FusionError):
            fuse(x, y, z, "p", {"p", "q"})

    def test_prefix_conditions_reported(self):
        a = internal("p", tag="a")
        b = internal("p", tag="b")
        x = config(a)
        unrelated = config(b)
        problems = fusion_side_conditions(x, unrelated, x, "p", {"p", "q"})
        assert "x is not a prefix of y" in problems
