"""Whole-process crash chaos: SIGKILL + resume must be lossless.

These tests drive ``tests/chaos.py``: real ``repro explore`` child
processes, killed with SIGKILL (and once mid-save via the ``torn_save``
fault, which leaves a genuinely torn on-disk state), resumed under
fresh interpreter hash seeds, until the exploration completes.  The
surviving checkpoint must reconstruct bit-identically.

The acceptance bar (ISSUE 7): at least three forced deaths including
one torn save, at star n=6, for the kernel and the sharded engine, and
across kernel<->sharded switches of the same checkpoint file.
"""

from chaos import TORN_SAVE_EXIT, run_campaign, verify_bit_identical

STAR6 = 6332  # |universe| of the star n=6 broadcast protocol


def run_and_check(tmp_path, **kwargs):
    path = tmp_path / "chaos.ckpt"
    result = run_campaign(path, **kwargs)
    assert result.completed, result.describe()
    count = verify_bit_identical(
        path, result.size, store=kwargs.get("store", "objects")
    )
    return result, count


class TestKernelChaos:
    def test_three_deaths_including_torn_save(self, tmp_path):
        result, count = run_and_check(
            tmp_path, size=6, kills=3, seed=11, workers_schedule=(1,)
        )
        assert count == STAR6
        assert result.kills + result.torn_saves >= 3, result.describe()
        assert result.torn_saves >= 1, result.describe()
        # The torn save really died mid-save, not at a layer boundary.
        torn = [a for a in result.attempts if a.outcome == "torn_save"]
        assert torn[0].returncode == TORN_SAVE_EXIT

    def test_pure_sigkill_campaign(self, tmp_path):
        """No cooperating fault at all: every death is external."""
        result, count = run_and_check(
            tmp_path, size=6, kills=3, seed=2, workers_schedule=(1,), torn_save=False
        )
        assert count == STAR6
        assert result.kills >= 3, result.describe()

    def test_sigkill_mid_background_write(self, tmp_path):
        """An external SIGKILL lands while the background checkpoint
        writer is provably between segment append and manifest replace
        (held there by the ``stall_write`` fault): the orphan segment is
        discarded on resume and the survivor stays bit-identical."""
        result, count = run_and_check(
            tmp_path, size=5, kills=2, seed=13, workers_schedule=(1,),
            stall_kill=True,
        )
        assert count == 634
        assert result.stall_kills >= 1, result.describe()
        stalled = [a for a in result.attempts if a.outcome == "stall_kill"]
        # SIGKILL, not a cooperative exit: no returncode ever written.
        assert stalled[0].returncode == -9


class TestShardedChaos:
    def test_three_deaths_including_torn_save(self, tmp_path):
        result, count = run_and_check(
            tmp_path, size=6, kills=3, seed=3, workers_schedule=(2,)
        )
        assert count == STAR6
        assert result.kills + result.torn_saves >= 3, result.describe()
        assert result.torn_saves >= 1, result.describe()


class TestArenaChaos:
    def test_arena_with_spill_survives_kills(self, tmp_path):
        """The packed arena store with disk spill enabled dies and
        resumes like the object store: spilled chunks are a read cache,
        never checkpoint state, so a kill while spill files exist (and a
        resume that never sees them again) must still reconstruct
        bit-identically — verified against an object-store clean run."""
        spill = tmp_path / "spill"
        spill.mkdir()
        result, count = run_and_check(
            tmp_path,
            size=6,
            kills=3,
            seed=7,
            workers_schedule=(1,),
            store="arena",
            spill_dir=spill,
        )
        assert count == STAR6
        assert result.kills + result.torn_saves >= 3, result.describe()
        assert result.torn_saves >= 1, result.describe()


class TestEngineSwitchChaos:
    def test_kernel_and_sharded_share_the_survivor(self, tmp_path):
        """The same checkpoint file is crashed and resumed under the
        kernel, two workers, and three workers in turn."""
        result, count = run_and_check(
            tmp_path, size=6, kills=4, seed=5, workers_schedule=(1, 2, 1, 3)
        )
        assert count == STAR6
        assert result.kills + result.torn_saves >= 4, result.describe()
        engines = {a.workers for a in result.attempts}
        assert {1, 2}.issubset(engines), result.describe()

    def test_hash_seeds_differ_across_attempts(self, tmp_path):
        """Every resume runs in a fresh interpreter hash domain; the
        checkpoint must be portable across all of them."""
        result, count = run_and_check(
            tmp_path, size=5, kills=3, seed=17, workers_schedule=(1, 2)
        )
        assert count == 634
        seeds = [a.hash_seed for a in result.attempts]
        assert len(set(seeds)) == len(seeds), result.describe()


class TestDiskFaultChaos:
    """Hostile storage layered on top of the crash campaign (PR 10):
    every crashed attempt carries a seeded transient storage fault, the
    final run absorbs a permanent ENOSPC by degrading loudly, and the
    survivor must still be bit-identical."""

    def test_disk_faults_campaign_survives(self, tmp_path):
        result, count = run_and_check(
            tmp_path, size=5, kills=1, seed=11, workers_schedule=(1,),
            disk_faults=True,
        )
        assert count == 634
        injected = sum(len(a.storage_faults) for a in result.attempts)
        assert injected >= 2, result.describe()
        # The completing run always carries the permanent fault.
        final = result.attempts[-1]
        assert any(
            spec.startswith("enospc@") for spec in final.storage_faults
        ), result.describe()

    def test_disk_faults_sharded(self, tmp_path):
        result, count = run_and_check(
            tmp_path, size=5, kills=1, seed=3, workers_schedule=(2,),
            disk_faults=True,
        )
        assert count == 634
        assert sum(len(a.storage_faults) for a in result.attempts) >= 2
