"""Dijkstra–Scholten: correctness and the exact-overhead property."""

import pytest

from repro.core.configuration import Configuration
from repro.protocols.dijkstra_scholten import DijkstraScholtenProtocol
from repro.protocols.termination import (
    Activation,
    TerminationWorkload,
    generate_workload,
)
from repro.simulation.scheduler import (
    EagerReceiveScheduler,
    LazyReceiveScheduler,
    RandomScheduler,
)
from repro.simulation.simulator import simulate


def run(workload, scheduler):
    protocol = DijkstraScholtenProtocol(workload)
    trace = simulate(protocol, scheduler)
    return protocol, trace


class TestDetection:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_detects(self, seed):
        workload = generate_workload(
            ("a", "b", "c", "d"), seed=seed, activations_per_process=3
        )
        protocol, trace = run(workload, RandomScheduler(seed))
        assert protocol.has_detected(trace.final_configuration)

    @pytest.mark.parametrize("seed", range(6))
    def test_detection_is_sound(self, seed):
        """The root announces only after genuine termination."""
        workload = generate_workload(("a", "b", "c"), seed=seed)
        protocol, trace = run(workload, RandomScheduler(seed + 100))
        for prefix in trace.computation.prefixes():
            configuration = Configuration.from_computation(prefix)
            if protocol.has_detected(configuration):
                assert protocol.is_terminated(configuration)
                break

    def test_detects_trivial_termination(self):
        workload = TerminationWorkload(
            processes=("a", "b"), root="a", plans={"a": (Activation(()),)}
        )
        protocol, trace = run(workload, RandomScheduler(0))
        assert protocol.has_detected(trace.final_configuration)
        assert protocol.overhead_messages(trace.final_configuration) == 0


class TestOverhead:
    @pytest.mark.parametrize("seed", range(8))
    def test_overhead_equals_underlying(self, seed):
        """One ack per work message — DS meets the §5(c) bound exactly."""
        workload = generate_workload(
            ("a", "b", "c", "d", "e"), seed=seed, activations_per_process=3
        )
        protocol, trace = run(workload, RandomScheduler(seed))
        final = trace.final_configuration
        work = trace.count_messages("work")
        assert work == workload.total_work_messages()
        assert protocol.overhead_messages(final) == work

    def test_overhead_under_adversarial_schedules(self):
        workload = generate_workload(("a", "b", "c"), seed=1)
        for scheduler in (EagerReceiveScheduler(), LazyReceiveScheduler()):
            protocol, trace = run(workload, scheduler)
            final = trace.final_configuration
            assert protocol.has_detected(final)
            assert protocol.overhead_messages(final) == trace.count_messages("work")


class TestDsState:
    def test_quiet_at_the_end(self):
        workload = generate_workload(("a", "b", "c"), seed=3)
        protocol, trace = run(workload, RandomScheduler(3))
        final = trace.final_configuration
        for process in workload.processes:
            state = protocol.ds_state(process, final.history(process))
            assert state.deficit == 0
            assert not state.pending
            if process != workload.root:
                assert not state.engaged

    def test_deficit_counts_unacked_work(self):
        workload = TerminationWorkload(
            processes=("a", "b"), root="a", plans={"a": (Activation(("b",)),)}
        )
        protocol = DijkstraScholtenProtocol(workload)
        from repro.core.configuration import EMPTY_CONFIGURATION

        configuration = EMPTY_CONFIGURATION
        # Drive: a sends work to b.
        sends = [
            event
            for event in protocol.enabled_events(configuration)
            if event.is_send and event.message.tag == "work"
        ]
        configuration = configuration.extend(sends[0])
        state = protocol.ds_state("a", configuration.history("a"))
        assert state.deficit == 1

    def test_detect_fires_once(self):
        workload = generate_workload(("a", "b"), seed=0)
        protocol, trace = run(workload, RandomScheduler(0))
        detects = trace.count_internal("detect")
        assert detects == 1
