"""Terminal renderings."""

from repro.protocols.pingpong import PingPongProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.viz.render import knowledge_timeline, space_time_diagram


class TestSpaceTime:
    def test_one_row_per_process(self):
        trace = simulate(PingPongProtocol(rounds=2), RandomScheduler(0))
        diagram = space_time_diagram(trace.computation)
        lines = diagram.splitlines()
        assert lines[0].startswith("p |")
        assert lines[1].startswith("q |")

    def test_symbols_match_event_kinds(self):
        trace = simulate(PingPongProtocol(rounds=1), RandomScheduler(0))
        diagram = space_time_diagram(trace.computation)
        assert "▲" in diagram and "▼" in diagram

    def test_truncation(self):
        trace = simulate(PingPongProtocol(rounds=10), RandomScheduler(0))
        diagram = space_time_diagram(trace.computation, max_columns=10)
        assert "…" in diagram

    def test_legend_lists_events(self):
        trace = simulate(PingPongProtocol(rounds=1), RandomScheduler(0))
        diagram = space_time_diagram(trace.computation)
        assert "send ping#0(p->q)" in diagram
        assert "recv pong#0(q->p)" in diagram


class TestTimeline:
    def test_flags_are_interleaved(self):
        trace = simulate(PingPongProtocol(rounds=1), RandomScheduler(0))
        timeline = knowledge_timeline(trace.computation, {3: "p knows b"})
        assert "<-- p knows b" in timeline
        assert timeline.count("<--") == 1

    def test_no_flags(self):
        trace = simulate(PingPongProtocol(rounds=1), RandomScheduler(0))
        timeline = knowledge_timeline(trace.computation, {})
        assert "<--" not in timeline
        assert len(timeline.splitlines()) == 4
