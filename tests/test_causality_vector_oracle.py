"""Vector-clock ``happened_before`` cross-checked against the BFS oracle.

:class:`CausalOrder` answers ``happened_before`` from precomputed vector
stamps; :meth:`happened_before_bfs` keeps the original reachability
search as an independently computed oracle.  These tests compare the two
on randomized simulator traces across several protocols, and exercise the
fallback path for segments with no linearization.
"""

import pytest

from repro.causality.order import CausalOrder
from repro.core.computation import computation_of
from repro.core.events import internal, message_pair
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate


def all_pairs_agree(order: CausalOrder) -> None:
    events = order.events
    for first in events:
        for second in events:
            assert order.happened_before(first, second) == order.happened_before_bfs(
                first, second
            ), (first, second)


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
def test_random_election_traces_match_oracle(seed):
    ring = tuple(f"n{i}" for i in range(6))
    trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(seed))
    all_pairs_agree(CausalOrder(trace.computation))


@pytest.mark.parametrize("seed", [0, 3])
def test_random_token_bus_traces_match_oracle(seed):
    trace = simulate(TokenBusProtocol(max_hops=5), RandomScheduler(seed))
    all_pairs_agree(CausalOrder(trace.computation))


@pytest.mark.parametrize("seed", [0, 5])
def test_random_broadcast_traces_match_oracle(seed):
    protocol = BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub")
    trace = simulate(protocol, RandomScheduler(seed))
    all_pairs_agree(CausalOrder(trace.computation))


def test_pingpong_configuration_matches_oracle():
    trace = simulate(PingPongProtocol(rounds=3), RandomScheduler(0))
    all_pairs_agree(CausalOrder(trace.final_configuration))


def test_strictly_before_and_concurrent_match_oracle():
    ring = tuple(f"n{i}" for i in range(5))
    trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(4))
    order = CausalOrder(trace.computation)
    for first in order.events:
        for second in order.events:
            bfs_hb = order.happened_before_bfs(first, second)
            bfs_strict = first != second and bfs_hb
            assert order.strictly_before(first, second) == bfs_strict
            bfs_concurrent = (
                first != second
                and not bfs_hb
                and not order.happened_before_bfs(second, first)
            )
            assert order.concurrent(first, second) == bfs_concurrent


def test_vector_stamp_counts_causal_past():
    snd, rcv = message_pair("p", "q", "m")
    after = internal("q", tag="after")
    order = CausalOrder(computation_of(snd, rcv, after))
    assert order.vector_stamp(snd) == {"p": 1, "q": 0}
    assert order.vector_stamp(rcv) == {"p": 1, "q": 1}
    assert order.vector_stamp(after) == {"p": 1, "q": 2}


def test_vector_stamp_unknown_event_is_none():
    order = CausalOrder(computation_of(internal("p", tag="a")))
    assert order.vector_stamp(internal("p", tag="other")) is None


def test_cyclic_segment_falls_back_to_bfs():
    """A segment where each receive precedes the matching send on the
    other process has no linearization; the fast path must defer."""
    snd1, rcv1 = message_pair("p", "q", "m1")
    snd2, rcv2 = message_pair("q", "p", "m2")
    segment = {"p": (rcv2, snd1), "q": (rcv1, snd2)}
    order = CausalOrder(segment)
    assert not order.is_acyclic()
    assert order.vector_stamp(snd1) is None
    all_pairs_agree(order)
    # The cycle makes every event reachable from every other.
    assert order.happened_before(snd1, rcv2)
    assert order.happened_before(rcv2, snd1)
