"""Unit tests for Configuration: canonical [D]-class representatives."""

import pytest

from repro.core.computation import computation_of
from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.errors import InvalidConfigurationError
from repro.core.events import internal, message_pair


def sample():
    snd, rcv = message_pair("p", "q", "m")
    a = internal("p", tag="a")
    b = internal("q", tag="b")
    return snd, rcv, a, b


class TestValueSemantics:
    def test_permutations_share_a_configuration(self):
        snd, rcv, a, b = sample()
        first = Configuration.from_computation(computation_of(a, b))
        second = Configuration.from_computation(computation_of(b, a))
        assert first == second
        assert hash(first) == hash(second)

    def test_empty_histories_are_normalised(self):
        a = internal("p", tag="a")
        explicit = Configuration({"p": (a,), "q": ()})
        implicit = Configuration({"p": (a,)})
        assert explicit == implicit
        assert explicit.processes == {"p"}

    def test_misfiled_event_rejected(self):
        a = internal("p", tag="a")
        with pytest.raises(InvalidConfigurationError):
            Configuration({"q": (a,)})

    def test_len_counts_all_events(self):
        snd, rcv, a, b = sample()
        configuration = Configuration.from_computation(computation_of(snd, rcv, a))
        assert len(configuration) == 3


class TestProjection:
    def test_projection_key_ignores_other_processes(self):
        snd, rcv, a, b = sample()
        one = Configuration({"p": (a,)})
        two = Configuration({"p": (a,), "q": (b,)})
        assert one.projection({"p"}) == two.projection({"p"})
        assert one.projection({"p", "q"}) != two.projection({"p", "q"})

    def test_history_defaults_to_empty(self):
        assert EMPTY_CONFIGURATION.history("anyone") == ()


class TestOrderAndExtension:
    def test_sub_configuration(self):
        snd, rcv, a, b = sample()
        small = Configuration({"p": (snd,)})
        large = Configuration({"p": (snd, a), "q": (rcv,)})
        assert small.is_sub_configuration_of(large)
        assert not large.is_sub_configuration_of(small)
        assert EMPTY_CONFIGURATION.is_sub_configuration_of(small)

    def test_sub_configuration_requires_prefix_not_subset(self):
        a0 = internal("p", tag="a", seq=0)
        a1 = internal("p", tag="a", seq=1)
        first = Configuration({"p": (a1,)})
        second = Configuration({"p": (a0, a1)})
        assert not first.is_sub_configuration_of(second)

    def test_extend(self):
        snd, rcv, a, b = sample()
        extended = EMPTY_CONFIGURATION.extend(snd).extend(rcv)
        assert extended.history("p") == (snd,)
        assert extended.history("q") == (rcv,)

    def test_suffix_after(self):
        snd, rcv, a, b = sample()
        small = Configuration({"p": (snd,)})
        large = Configuration({"p": (snd, a), "q": (rcv,)})
        assert large.suffix_after(small) == {"p": (a,), "q": (rcv,)}

    def test_suffix_after_requires_sub_configuration(self):
        snd, rcv, a, b = sample()
        with pytest.raises(InvalidConfigurationError):
            Configuration({"p": (a,)}).suffix_after(Configuration({"p": (snd,)}))


class TestLinearization:
    def test_linearize_round_trip(self):
        snd, rcv, a, b = sample()
        original = computation_of(snd, a, rcv, b)
        configuration = Configuration.from_computation(original)
        linearized = configuration.linearize()
        assert Configuration.from_computation(linearized) == configuration

    def test_linearize_respects_send_before_receive(self):
        snd, rcv, a, b = sample()
        configuration = Configuration({"p": (snd,), "q": (rcv,)})
        linearized = configuration.linearize()
        assert list(linearized).index(snd) < list(linearized).index(rcv)

    def test_linearize_detects_cycles(self):
        snd1, rcv1 = message_pair("p", "q", "m1")
        snd2, rcv2 = message_pair("q", "p", "m2")
        # p receives m2 before sending m1; q receives m1 before sending m2.
        cyclic = Configuration({"p": (rcv2, snd1), "q": (rcv1, snd2)})
        with pytest.raises(InvalidConfigurationError):
            cyclic.linearize()

    def test_linearize_is_deterministic(self):
        snd, rcv, a, b = sample()
        configuration = Configuration.from_computation(computation_of(snd, a, rcv, b))
        assert configuration.linearize() == configuration.linearize()


class TestMessageBookkeeping:
    def test_in_flight(self):
        snd, rcv, a, b = sample()
        halfway = Configuration({"p": (snd,)})
        assert halfway.in_flight_messages == {snd.message}
        done = Configuration({"p": (snd,), "q": (rcv,)})
        assert done.in_flight_messages == frozenset()

    def test_count_on(self):
        snd, rcv, a, b = sample()
        configuration = Configuration.from_computation(computation_of(snd, rcv, a, b))
        assert configuration.count_on("p") == 2
        assert configuration.count_on({"p", "q"}) == 4
