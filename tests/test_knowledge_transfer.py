"""Theorems 4, 5, 6 and Lemma 4: how knowledge is transferred (§4.3)."""

from repro.knowledge.formula import Knows
from repro.knowledge.predicates import did_internal, has_received, has_sent
from repro.knowledge.transfer import (
    check_lemma_4,
    check_lemma_4_corollaries,
    check_theorem_4,
    check_theorem_4_negative_corollary,
    check_theorem_5_gain,
    check_theorem_6_loss,
    nested_knowledge,
)

P = frozenset("p")
Q = frozenset("q")
A = frozenset("a")
B = frozenset("b")
C = frozenset("c")


class TestTheorem4:
    def test_pingpong(self, pingpong_evaluator):
        b = has_received("q", "ping")
        for sets in ([P], [P, Q], [Q, P], [P, Q, P]):
            report = check_theorem_4(pingpong_evaluator, sets, b)
            assert report.holds, report
        # Non-vacuity: the two-set case must actually fire.
        assert check_theorem_4(pingpong_evaluator, [P, Q], b).checked > 0

    def test_broadcast_three_sets(self, broadcast_evaluator):
        b = did_internal("a", "learn")
        report = check_theorem_4(broadcast_evaluator, [C, B, A], b)
        assert report.holds and report.checked > 0

    def test_sure_variant(self, pingpong_evaluator):
        b = has_received("q", "ping")
        report = check_theorem_4(pingpong_evaluator, [P, Q], b, sure=True)
        assert report.holds and report.checked > 0

    def test_negative_corollary(self, pingpong_evaluator):
        b = has_received("q", "ping")
        for sets in ([P], [P, Q], [Q, P]):
            report = check_theorem_4_negative_corollary(
                pingpong_evaluator, sets, b
            )
            assert report.holds, report


class TestLemma4:
    def test_pingpong_events(self, pingpong_evaluator):
        b = has_received("q", "ping")  # local to q = P̄ for P = {p}
        reports = check_lemma_4(pingpong_evaluator, b, P)
        assert all(report.holds for report in reports.values()), reports
        assert reports["receive"].checked > 0
        assert reports["send"].checked > 0

    def test_broadcast_events(self, broadcast_evaluator):
        b = did_internal("a", "learn")  # local to a
        reports = check_lemma_4(broadcast_evaluator, b, frozenset({"b", "c"}))
        assert all(report.holds for report in reports.values()), reports

    def test_corollaries_gain_needs_receive_loss_needs_send(
        self, pingpong_evaluator
    ):
        b = has_received("q", "ping")
        reports = check_lemma_4_corollaries(pingpong_evaluator, b, P)
        assert reports["gain-receive"].holds
        assert reports["loss-send"].holds
        assert reports["gain-receive"].checked > 0


class TestTheorem5Gain:
    def test_pingpong_single_set(self, pingpong_evaluator):
        b = has_received("q", "ping")
        report = check_theorem_5_gain(pingpong_evaluator, [P], b)
        assert report.holds and report.checked > 0

    def test_pingpong_two_sets(self, pingpong_evaluator):
        b = has_received("q", "ping")
        report = check_theorem_5_gain(pingpong_evaluator, [P, Q], b)
        assert report.holds, report

    def test_broadcast_chain_direction(self, broadcast_evaluator):
        """c knows b knows (fact at a): the chain must run a -> b -> c...
        i.e. <Pn ... P1> with P1 = {c}, P2 = {b}, ... reversed."""
        b = did_internal("a", "learn")
        report = check_theorem_5_gain(broadcast_evaluator, [C, B], b)
        assert report.holds and report.checked > 0

    def test_token_bus(self, token_bus_evaluator):
        from repro.protocols.token_bus import holds_token_atom

        protocol = token_bus_evaluator.universe.protocol
        b = holds_token_atom(protocol, "q")
        report = check_theorem_5_gain(
            token_bus_evaluator, [frozenset({"r"})], b, check_receive=False
        )
        assert report.holds


class TestTheorem6Loss:
    def test_pingpong(self, pingpong_evaluator):
        """p knows 'q has not sent pong #2' and loses that knowledge when
        q sends — loss requires a chain ending at the loser."""
        from repro.knowledge.formula import Not

        b = Not(has_sent("q", "pong"))
        report = check_theorem_6_loss(pingpong_evaluator, [P, Q], b)
        assert report.holds

    def test_toggle_loss_is_exercised(self, toggle_evaluator):
        """q knows bit=false initially; the owner's flip destroys it."""
        from repro.knowledge.formula import Not
        from repro.protocols.toggle import bit_atom

        bit = bit_atom(toggle_evaluator.universe.protocol)
        report = check_theorem_6_loss(
            toggle_evaluator, [Q, P], Not(bit), check_send=False
        )
        assert report.holds

    def test_loss_of_remote_knowledge_needs_send(self, pingpong_evaluator):
        from repro.knowledge.formula import Not

        b = Not(has_sent("q", "pong"))  # local to q
        report = check_theorem_6_loss(pingpong_evaluator, [P, Q], b)
        assert report.holds


class TestNestedKnowledgeBuilder:
    def test_nesting_order(self):
        b = has_received("q", "ping")
        nested = nested_knowledge([P, Q], b)
        assert isinstance(nested, Knows)
        assert nested.processes == P
        assert nested.operand.processes == Q

    def test_sure_nesting(self):
        from repro.knowledge.formula import Sure

        b = has_received("q", "ping")
        nested = nested_knowledge([P], b, sure=True)
        assert isinstance(nested, Sure)
