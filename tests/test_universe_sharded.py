"""Multiprocess sharded exploration: bit-identity with the kernel.

The contract of ``Universe(protocol, workers=K)`` is that the merged
universe is *bit-identical* to single-process exploration: same dense
ids, same configuration objects (by value), same CSR successor arrays,
same content-hash table (including collision-bucket layout), same class
masks, same completeness flag — and the same truncation point under
``on_limit="truncate"``.  These tests assert all of it on every protocol
family the kernel special-cases: broadcast stars/trees/rings (compiled
fast path), token bus and ping-pong (value-object message churn),
selective reception (``can_receive`` override) and custom system-level
enabling (``enabled_events`` override).
"""

import random

import pytest

from repro.core.configuration import hash_domain_token
from repro.core.errors import UniverseError
from repro.protocols.broadcast import (
    BroadcastProtocol,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.protocols.failure_monitor import SyncFailureMonitorProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.snapshot import SnapshotTokenRingProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.network import FifoProtocol
from repro.universe.explorer import Universe, iter_bit_ids
from repro.universe.sharded import resolve_workers


def star_protocol(size):
    receivers = tuple(f"p{index}" for index in range(size - 1))
    return BroadcastProtocol(star_topology("hub", receivers), "hub")


def assert_bit_identical(single: Universe, sharded: Universe) -> None:
    """The full bit-identity contract, layer by layer."""
    assert len(single) == len(sharded)
    assert single.is_complete == sharded.is_complete
    # Dense ids: the configuration at every id is the same value, with
    # the same per-process histories.
    for config_id, (ours, theirs) in enumerate(
        zip(single._configurations, sharded._configurations)
    ):
        assert ours == theirs, f"configuration {config_id} differs"
        assert ours._histories == theirs._histories
    # CSR successor store and the content-hash id table (including
    # collision buckets, which must share bucket order).
    assert single._succ_offsets == sharded._succ_offsets
    assert single._succ_ids == sharded._succ_ids
    assert single._ids_by_hash == sharded._ids_by_hash
    # Class masks derived from the dense ids.
    for process in sorted(single.processes)[:2]:
        assert (
            single.partition_table(process).masks()
            == sharded.partition_table(process).masks()
        )
    two = frozenset(sorted(single.processes)[:2])
    assert single.class_masks(two) == sharded.class_masks(two)


PROTOCOLS = [
    pytest.param(lambda: star_protocol(5), 2, id="star5-w2"),
    pytest.param(lambda: star_protocol(6), 3, id="star6-w3"),
    pytest.param(
        lambda: BroadcastProtocol(
            tree_topology(tuple(f"t{index}" for index in range(7))), "t0"
        ),
        2,
        id="tree-d2-w2",
    ),
    pytest.param(
        lambda: BroadcastProtocol(
            ring_topology(tuple(f"r{index}" for index in range(5))), "r0"
        ),
        4,
        id="ring5-w4",
    ),
    pytest.param(lambda: TokenBusProtocol(max_hops=5), 2, id="tokenbus-w2"),
    pytest.param(lambda: PingPongProtocol(rounds=2), 5, id="pingpong-w5"),
    pytest.param(
        lambda: SyncFailureMonitorProtocol(rounds=2),
        2,
        id="custom-enabling-w2",
    ),
    pytest.param(
        lambda: FifoProtocol(
            SnapshotTokenRingProtocol(("a", "b", "c"), max_hops=3)
        ),
        3,
        id="selective-w3",
    ),
]


class TestShardedBitIdentity:
    @pytest.mark.parametrize("factory, workers", PROTOCOLS)
    def test_matches_single_process(self, factory, workers):
        single = Universe(factory())
        sharded = Universe(factory(), workers=workers)
        assert_bit_identical(single, sharded)

    def test_star7_with_four_workers(self):
        """The n<=7 scale point of the acceptance contract."""
        single = Universe(star_protocol(7), max_configurations=None)
        sharded = Universe(star_protocol(7), max_configurations=None, workers=4)
        assert len(single) == 75_974
        assert_bit_identical(single, sharded)

    def test_more_workers_than_frontier(self):
        """K larger than any frontier layer: shards may sit idle."""
        single = Universe(PingPongProtocol(rounds=1))
        sharded = Universe(PingPongProtocol(rounds=1), workers=7)
        assert_bit_identical(single, sharded)


class TestShardedBounds:
    def test_truncation_is_deterministic(self):
        """``on_limit="truncate"`` stops at the same configuration."""
        single = Universe(
            star_protocol(6), max_configurations=500, on_limit="truncate"
        )
        sharded = Universe(
            star_protocol(6),
            max_configurations=500,
            on_limit="truncate",
            workers=3,
        )
        assert len(single) == 500
        assert not sharded.is_complete
        assert_bit_identical(single, sharded)

    def test_truncation_matches_across_worker_counts(self):
        universes = [
            Universe(
                star_protocol(5),
                max_configurations=123,
                on_limit="truncate",
                workers=workers,
            )
            for workers in (None, 2, 4)
        ]
        for sharded in universes[1:]:
            assert_bit_identical(universes[0], sharded)

    def test_limit_raises_like_kernel(self):
        with pytest.raises(UniverseError, match="exceeded 50"):
            Universe(star_protocol(5), max_configurations=50, workers=2)

    def test_max_events_bound(self):
        single = Universe(star_protocol(5), max_events=6)
        sharded = Universe(star_protocol(5), max_events=6, workers=2)
        assert not single.is_complete
        assert_bit_identical(single, sharded)

    def test_queries_work_on_sharded_universe(self):
        sharded = Universe(star_protocol(5), workers=2)
        root = sharded.configuration_of_id(0)
        assert sharded.config_id(root) == 0
        assert root in sharded
        successors = sharded.successors(root)
        assert successors
        assert all(sharded.config_id(child) > 0 for child in successors)


class TestWorkerResolution:
    def test_none_zero_one_mean_in_process(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(UniverseError, match="workers must be >= 0"):
            resolve_workers(-1)

    def test_absurd_counts_rejected(self):
        with pytest.raises(UniverseError, match="workers must be <="):
            resolve_workers(1000)

    def test_hash_domain_token_is_stable_in_process(self):
        assert hash_domain_token() == hash_domain_token()


class TestIterBitIdsWordWalk:
    """The zero-word-skipping mask walk against the byte-table reference
    (the pre-PR implementation, inlined here as the oracle)."""

    @staticmethod
    def reference_iter(mask):
        from repro.universe.explorer import _BYTE_BITS

        if not mask:
            return
        offset = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
            if byte:
                for bit in _BYTE_BITS[byte]:
                    yield offset + bit
            offset += 8

    @pytest.mark.parametrize(
        "mask",
        [
            0,
            1,
            2,
            1 << 63,
            1 << 64,
            (1 << 64) - 1,
            (1 << 64) | 1,
            (1 << 128) - 1,
            ((1 << 64) - 1) << 64,
            (1 << 777) | (1 << 63) | 1,
        ],
    )
    def test_word_boundaries(self, mask):
        assert list(iter_bit_ids(mask)) == list(self.reference_iter(mask))

    def test_randomized_equivalence(self):
        rng = random.Random(20260730)
        for _ in range(500):
            mask = 0
            size = rng.randint(1, 4096)
            for _ in range(rng.randint(0, 256)):
                mask |= 1 << rng.randrange(size)
            if rng.random() < 0.5:  # splice a dense run of set bits
                run = (1 << rng.randint(1, 256)) - 1
                mask |= run << rng.randrange(size)
            assert list(iter_bit_ids(mask)) == list(self.reference_iter(mask))

    def test_bit_count_agreement(self):
        rng = random.Random(7)
        for _ in range(100):
            mask = rng.getrandbits(rng.randint(1, 2048))
            ids = list(iter_bit_ids(mask))
            assert len(ids) == mask.bit_count()
            assert ids == sorted(ids)
