"""Theorem 1 — the Fundamental Theorem of Process Chains (§3.2)."""

from repro.causality.chains import chain_in_suffix
from repro.causality.order import CausalOrder
from repro.isomorphism.fundamental import (
    chain_ranks,
    check_theorem_1,
    composition_witness_by_chains,
    theorem_1_holds,
)
from repro.isomorphism.relation import isomorphic

P = frozenset("p")
Q = frozenset("q")
A = frozenset("a")
B = frozenset("b")
C = frozenset("c")


class TestChainRanks:
    def test_ranks_detect_chains(self, broadcast_universe):
        sets = [A, B, C]
        for x, z in broadcast_universe.sub_configuration_pairs():
            suffix = z.suffix_after(x)
            order = CausalOrder(suffix)
            ranks = chain_ranks(order, sets)
            has_chain = chain_in_suffix(z, x, sets) is not None
            assert has_chain == any(rank >= 3 for rank in ranks.values())

    def test_ranks_are_monotone_along_causality(self, broadcast_universe):
        final = max(broadcast_universe, key=len)
        order = CausalOrder(final)
        ranks = chain_ranks(order, [A, B, C])
        for event in order.events:
            for successor in order.immediate_successors(event):
                assert ranks[successor] >= ranks[event]


class TestTheorem1:
    def test_exhaustive_on_pingpong(self, pingpong_universe):
        sequences = [[P], [Q], [P, Q], [Q, P], [P, Q, P], [frozenset({"p", "q"})]]
        assert check_theorem_1(pingpong_universe, sequences) > 0

    def test_exhaustive_on_broadcast(self, broadcast_universe):
        sequences = [[A], [B], [A, B], [B, A], [A, B, C], [C, B, A]]
        assert check_theorem_1(broadcast_universe, sequences) > 0

    def test_exhaustive_on_token_bus(self, token_bus_universe):
        stations = sorted(token_bus_universe.processes)
        p, q, r = stations[0], stations[1], stations[2]
        sequences = [
            [frozenset({p})],
            [frozenset({p}), frozenset({q})],
            [frozenset({p}), frozenset({q}), frozenset({r})],
            [frozenset({r}), frozenset({q}), frozenset({p})],
        ]
        assert check_theorem_1(token_bus_universe, sequences) > 0

    def test_single_instance(self, pingpong_universe):
        configs = sorted(pingpong_universe, key=len)
        empty = configs[0]
        full = max(pingpong_universe, key=len)
        assert theorem_1_holds(pingpong_universe, empty, full, [P, Q])


class TestConstructiveWitness:
    def test_witnesses_are_valid_and_linked(self, broadcast_universe):
        sets = [A, B]
        seen = 0
        for x, z in broadcast_universe.sub_configuration_pairs():
            witness = composition_witness_by_chains(x, z, sets)
            if witness is None:
                # Theorem 1 promises nothing; the chain must exist.
                assert chain_in_suffix(z, x, sets) is not None
                continue
            seen += 1
            assert witness[0] == x and witness[-1] == z
            assert len(witness) == len(sets) + 1
            for index, p_set in enumerate(sets):
                assert isomorphic(witness[index], witness[index + 1], p_set)
            for intermediate in witness:
                assert intermediate in broadcast_universe
        assert seen > 0

    def test_three_set_witnesses(self, broadcast_universe):
        sets = [B, A, C]
        for x, z in broadcast_universe.sub_configuration_pairs():
            witness = composition_witness_by_chains(x, z, sets)
            if witness is None:
                continue
            for index, p_set in enumerate(sets):
                assert isomorphic(witness[index], witness[index + 1], p_set)
