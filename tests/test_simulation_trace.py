"""SimulationTrace measurement helpers."""

from repro.core.configuration import Configuration
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.protocols.pingpong import PingPongProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate


def pingpong_trace(rounds=2, seed=0):
    return simulate(PingPongProtocol(rounds=rounds), RandomScheduler(seed))


class TestCounting:
    def test_count_messages_by_tag(self):
        trace = pingpong_trace(rounds=3)
        assert trace.count_messages() == 6
        assert trace.count_messages("ping") == 3
        assert trace.count_messages("pong") == 3
        assert trace.count_messages("nope") == 0

    def test_count_internal(self):
        protocol = BroadcastProtocol(line_topology(("a", "b")), root="a")
        trace = simulate(protocol, RandomScheduler(0))
        assert trace.count_internal("learn") == 1
        assert trace.count_internal() == 1

    def test_summary_is_consistent(self):
        trace = pingpong_trace()
        summary = trace.summary()
        assert summary["events"] == summary["sends"] + summary["receives"] + summary["internal"]
        assert summary["undelivered"] == summary["sends"] - summary["receives"]

    def test_events_by_process(self):
        trace = pingpong_trace(rounds=1)
        counts = trace.events_by_process()
        assert counts == {"p": 2, "q": 2}


class TestSearching:
    def test_first_index(self):
        trace = pingpong_trace()
        first_receive = trace.first_index(lambda event: event.is_receive)
        assert first_receive is not None
        assert trace.computation[first_receive].is_receive
        assert trace.first_index(lambda event: False) is None

    def test_first_internal(self):
        protocol = BroadcastProtocol(line_topology(("a", "b")), root="a")
        trace = simulate(protocol, RandomScheduler(0))
        assert trace.first_internal("learn") == 0
        assert trace.first_internal("nothing") is None

    def test_prefix_where(self):
        trace = pingpong_trace()
        prefix = trace.prefix_where(lambda configuration: len(configuration) >= 3)
        assert prefix is not None and len(prefix) == 3
        assert trace.prefix_where(lambda configuration: False) is None

    def test_configurations_stream(self):
        trace = pingpong_trace(rounds=1)
        configurations = list(trace.configurations())
        assert len(configurations) == len(trace.computation) + 1
        assert configurations[-1] == trace.final_configuration
        for earlier, later in zip(configurations, configurations[1:]):
            assert earlier.is_sub_configuration_of(later)

    def test_final_configuration_matches_computation(self):
        trace = pingpong_trace()
        assert trace.final_configuration == Configuration.from_computation(
            trace.computation
        )


class TestRegistryChurn:
    def long_trace(self, hops=400):
        from repro.protocols.token_bus import TokenBusProtocol

        return simulate(TokenBusProtocol(max_hops=hops), RandomScheduler(0))

    def test_configurations_do_not_churn_the_registry(self):
        """Iterating a long trace's per-step configurations must not
        intern the throwaway prefixes (10^5-step traces would flood the
        weak registry with dying entries)."""
        from repro.core.configuration import registry_size

        trace = self.long_trace()
        before = registry_size()
        tail = None
        for configuration in trace.configurations():
            tail = configuration
        assert registry_size() == before
        assert tail == Configuration.from_computation(trace.computation)

    def test_final_configuration_interns_once(self):
        from repro.core.configuration import registry_size

        trace = self.long_trace()
        before = registry_size()
        final = trace.final_configuration
        assert registry_size() <= before + 1
        # The fast-path hash must agree exactly with the lazy public one.
        rebuilt = Configuration.from_computation(trace.computation)
        assert final == rebuilt and hash(final) == hash(rebuilt)
        # And a second build resolves to the same interned object.
        histories = {
            process: rebuilt.history(process) for process in rebuilt.processes
        }
        assert Configuration._intern_from_histories(
            dict(sorted(histories.items()))
        ) is final

    def test_prefix_configurations_hash_like_public_ones(self):
        trace = pingpong_trace(rounds=2)
        for configuration in trace.configurations():
            rebuilt = Configuration(
                {
                    process: configuration.history(process)
                    for process in configuration.processes
                }
            )
            assert configuration == rebuilt
            assert hash(configuration) == hash(rebuilt)
            assert len(configuration) == len(rebuilt)
