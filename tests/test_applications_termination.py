"""§5(c) termination-detection lower bound, measured (E12)."""

import pytest

from repro.applications.termination_bounds import (
    detector_ambiguity,
    overhead_table,
    run_dijkstra_scholten,
    run_polling_detector,
    spontaneous_overhead_after_termination,
)
from repro.protocols.polling_detector import PollingDetectorProtocol
from repro.protocols.termination import (
    Activation,
    TerminationWorkload,
    generate_workload,
)
from repro.simulation.scheduler import RandomScheduler
from repro.universe.explorer import Universe


class TestDetectionRuns:
    @pytest.mark.parametrize("seed", range(4))
    def test_ds_meets_the_bound_exactly(self, seed):
        workload = generate_workload(("a", "b", "c", "d"), seed=seed)
        run, _ = run_dijkstra_scholten(workload, RandomScheduler(seed))
        assert run.detected
        assert run.overhead_messages == run.underlying_messages
        assert run.meets_lower_bound

    @pytest.mark.parametrize("seed", range(4))
    def test_polling_exceeds_the_bound(self, seed):
        workload = generate_workload(("a", "b", "c"), seed=seed)
        run, _ = run_polling_detector(workload, RandomScheduler(seed))
        assert run.detected
        assert run.overhead_messages >= 2 * 2 * 3  # two waves minimum

    def test_detection_after_termination(self):
        workload = generate_workload(("a", "b", "c"), seed=5)
        run, _ = run_dijkstra_scholten(workload, RandomScheduler(5))
        assert run.termination_index is not None
        assert run.detection_index is not None
        assert run.detection_index >= run.termination_index


class TestPaperArgumentStep1:
    def test_spontaneous_overhead_in_the_constructed_scenario(self):
        """The paper's step-1 scenario, realised: termination occurs with
        no overhead in flight, so the worker's acknowledgement is sent
        after termination, spontaneously."""
        from repro.applications.termination_bounds import spontaneous_ds_workload

        workload = spontaneous_ds_workload()
        run, trace = run_dijkstra_scholten(workload, RandomScheduler(0))
        assert run.detected
        assert run.termination_index is not None
        assert run.detection_index > run.termination_index
        assert (
            spontaneous_overhead_after_termination(trace, run.termination_index)
            >= 1
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_external_detector_receives_before_detecting(self, seed):
        """Theorem 5's receive corollary: the polling detector — for whom
        'terminated' is local to the complement — must receive a message
        between termination and its announcement."""
        from repro.applications.termination_bounds import (
            detector_receives_before_detection,
        )

        workload = generate_workload(("a", "b", "c"), seed=seed)
        run, trace = run_polling_detector(workload, RandomScheduler(seed))
        assert run.termination_index is not None
        assert run.detection_index is not None
        assert detector_receives_before_detection(
            trace, "detector", run.termination_index, run.detection_index
        )


class TestPaperArgumentStep2:
    def test_detector_cannot_distinguish_running_from_terminated(self):
        """Every (or nearly every) non-terminated configuration is
        isomorphic w.r.t. the detector to a terminated one — so a detector
        that never probes before termination cannot exist."""
        workload = TerminationWorkload(
            processes=("a", "b"),
            root="a",
            plans={"a": (Activation(("b",)),)},
        )
        protocol = PollingDetectorProtocol(workload, max_waves=1)
        universe = Universe(protocol, max_configurations=2_000_000)
        result = detector_ambiguity(universe)
        assert result["not_terminated"] > 0
        assert result["ambiguous"] == result["not_terminated"]

    def test_ambiguity_requires_polling_universe(self, pingpong_universe):
        with pytest.raises(TypeError):
            detector_ambiguity(pingpong_universe)


class TestOverheadTable:
    def test_table_shape_and_bound(self):
        rows = overhead_table(process_counts=(3, 4), seeds=(0, 1))
        assert len(rows) == 4
        for row in rows:
            assert row.ds_overhead == row.underlying
            assert row.ds_meets_bound
            assert row.polling_overhead > 0
            assert len(row.as_tuple()) == 6
