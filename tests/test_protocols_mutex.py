"""Token-ring mutual exclusion: safety is knowledge."""

import pytest

from repro.protocols.mutex import TokenRingMutexProtocol, check_mutual_exclusion
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def mutex_universe():
    return Universe(TokenRingMutexProtocol(max_hops=3, max_sessions=1))


class TestSafety:
    def test_mutual_exclusion_holds(self, mutex_universe):
        result = check_mutual_exclusion(mutex_universe)
        assert result["safe"]
        assert result["sessions"] > 0

    def test_safety_is_epistemic(self, mutex_universe):
        """The process in the critical section KNOWS it is alone."""
        result = check_mutual_exclusion(mutex_universe)
        assert result["epistemic"]

    def test_wrong_universe_rejected(self, pingpong_universe):
        with pytest.raises(TypeError):
            check_mutual_exclusion(pingpong_universe)


class TestBehaviour:
    def test_token_uniqueness(self, mutex_universe):
        protocol = mutex_universe.protocol
        for configuration in mutex_universe:
            holders = [
                station
                for station in protocol.stations
                if protocol.holds_token(station, configuration.history(station))
            ]
            assert len(holders) + len(configuration.in_flight_messages) == 1

    def test_cs_requires_token(self, mutex_universe):
        protocol = mutex_universe.protocol
        for configuration in mutex_universe:
            for station in protocol.stations:
                history = configuration.history(station)
                if protocol.in_critical_section(station, history):
                    assert protocol.holds_token(station, history)

    def test_sessions_bounded(self, mutex_universe):
        protocol = mutex_universe.protocol
        for configuration in mutex_universe:
            for station in protocol.stations:
                enters = sum(
                    1
                    for event in configuration.history(station)
                    if getattr(event, "tag", None) == "enter"
                )
                assert enters <= protocol.max_sessions

    @pytest.mark.parametrize("seed", range(5))
    def test_simulated_runs_are_safe(self, seed):
        protocol = TokenRingMutexProtocol(
            ("a", "b", "c", "d"), max_hops=6, max_sessions=2
        )
        trace = simulate(protocol, RandomScheduler(seed))
        for configuration in trace.configurations():
            inside = [
                station
                for station in protocol.stations
                if protocol.in_critical_section(
                    station, configuration.history(station)
                )
            ]
            assert len(inside) <= 1

    def test_every_station_can_get_a_turn(self):
        protocol = TokenRingMutexProtocol(("a", "b", "c"), max_hops=4)
        universe = Universe(protocol)
        visited = set()
        for configuration in universe:
            for station in protocol.stations:
                if protocol.in_critical_section(
                    station, configuration.history(station)
                ):
                    visited.add(station)
        assert visited == set(protocol.stations)

    def test_needs_two_stations(self):
        with pytest.raises(ValueError):
            TokenRingMutexProtocol(("solo",))
