"""Shared fixtures: small complete universes and their evaluators.

Universes are session-scoped — they are immutable once explored, and
several test modules quantify over the same ones.
"""

from __future__ import annotations

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.toggle import ToggleProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.explorer import Universe


@pytest.fixture(scope="session")
def pingpong_universe() -> Universe:
    """Two rounds of ping/pong between p and q (9 configurations)."""
    return Universe(PingPongProtocol(rounds=2))


@pytest.fixture(scope="session")
def pingpong_evaluator(pingpong_universe: Universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(pingpong_universe)


@pytest.fixture(scope="session")
def broadcast_universe() -> Universe:
    """A fact flooding down the line a - b - c."""
    return Universe(BroadcastProtocol(line_topology(("a", "b", "c")), root="a"))


@pytest.fixture(scope="session")
def broadcast_evaluator(broadcast_universe: Universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(broadcast_universe)


@pytest.fixture(scope="session")
def token_bus_universe() -> Universe:
    """The paper's five-station token bus, three hops."""
    return Universe(TokenBusProtocol(max_hops=3))


@pytest.fixture(scope="session")
def token_bus_evaluator(token_bus_universe: Universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(token_bus_universe)


@pytest.fixture(scope="session")
def toggle_universe() -> Universe:
    """An owner flipping a bit twice, reporting to an observer."""
    return Universe(ToggleProtocol(max_flips=2))


@pytest.fixture(scope="session")
def toggle_evaluator(toggle_universe: Universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(toggle_universe)
