"""Knowledge-flow measurements at scale (E9's simulator side)."""

from repro.applications.knowledge_flow import (
    broadcast_knowledge_latency,
    latency_series,
    verify_chain_gating,
)


class TestLatency:
    def test_rows_cover_the_line(self):
        rows, trace = broadcast_knowledge_latency(line_length=6, seed=1)
        assert len(rows) == 6
        assert all(row.learned_at_step is not None for row in rows)

    def test_latency_monotone_in_distance(self):
        """Farther processes learn later — the sequential-transfer shape."""
        rows, _ = broadcast_knowledge_latency(line_length=8, seed=2)
        steps = [row.learned_at_step for row in rows]
        assert steps == sorted(steps)

    def test_chain_gating(self):
        rows, trace = broadcast_knowledge_latency(line_length=6, seed=3)
        assert verify_chain_gating(rows, trace, root="n0")

    def test_series_grows_with_line_length(self):
        series = latency_series(line_lengths=(4, 8, 16), seed=0)
        lengths = [length for length, _ in series]
        steps = [step for _, step in series]
        assert lengths == [4, 8, 16]
        assert steps == sorted(steps)
        assert steps[0] >= 4  # at least one event per hop

    def test_root_learns_at_its_first_event(self):
        rows, _ = broadcast_knowledge_latency(line_length=4, seed=4)
        assert rows[0].learned_at_step == 0
