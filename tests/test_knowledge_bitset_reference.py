"""Bitmask knowledge evaluator vs a reference frozenset implementation.

The production :class:`KnowledgeEvaluator` computes extensions as int
bitmasks over dense configuration ids.  :class:`ReferenceEvaluator` below
re-implements the original frozenset algebra (the seed algorithm, kept
deliberately independent of the bitmask machinery) and the tests compare
the two on every shipped protocol universe and an enumerated universe.
"""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    CommonKnowledge,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Sure,
    knows,
)
from repro.knowledge.predicates import event_count_at_least
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.toggle import ToggleProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.builder import figure_3_1_universe
from repro.universe.explorer import Universe


class ReferenceEvaluator:
    """The seed frozenset algorithm, independent of bitmasks."""

    def __init__(self, universe):
        self._universe = universe
        self._partitions = {}

    def partition(self, processes):
        p_set = frozenset(processes)
        cached = self._partitions.get(p_set)
        if cached is None:
            buckets = {}
            for configuration in self._universe:
                buckets.setdefault(
                    configuration.projection(p_set), []
                ).append(configuration)
            cached = list(buckets.values())
            self._partitions[p_set] = cached
        return cached

    def extension(self, formula):
        everything = frozenset(self._universe)
        if isinstance(formula, Atom):
            return frozenset(c for c in self._universe if formula.fn(c))
        if isinstance(formula, Not):
            return everything - self.extension(formula.operand)
        if isinstance(formula, And):
            return self.extension(formula.left) & self.extension(formula.right)
        if isinstance(formula, Or):
            return self.extension(formula.left) | self.extension(formula.right)
        if isinstance(formula, Implies):
            return (everything - self.extension(formula.left)) | self.extension(
                formula.right
            )
        if isinstance(formula, Iff):
            left = self.extension(formula.left)
            right = self.extension(formula.right)
            return (left & right) | (everything - left - right)
        if isinstance(formula, Knows):
            return self._knows(formula.processes, formula.operand)
        if isinstance(formula, Sure):
            return self._knows(formula.processes, formula.operand) | self._knows(
                formula.processes, Not(formula.operand)
            )
        if isinstance(formula, CommonKnowledge):
            return self._common(formula.processes, formula.operand)
        # Constant
        return everything if formula.value else frozenset()

    def _knows(self, processes, operand):
        body = self.extension(operand)
        satisfied = set()
        for iso_class in self.partition(processes):
            if all(member in body for member in iso_class):
                satisfied.update(iso_class)
        return frozenset(satisfied)

    def _common(self, processes, operand):
        current = set(self.extension(operand))
        changed = True
        while changed:
            changed = False
            for process in sorted(processes):
                for iso_class in self.partition({process}):
                    inside = [member for member in iso_class if member in current]
                    if inside and len(inside) != len(iso_class):
                        for member in inside:
                            current.discard(member)
                        changed = True
        return frozenset(current)


def universes():
    yield "pingpong", Universe(PingPongProtocol(rounds=2))
    yield "broadcast", Universe(
        BroadcastProtocol(line_topology(("a", "b", "c")), root="a")
    )
    yield "token_bus", Universe(TokenBusProtocol(max_hops=3))
    yield "toggle", Universe(ToggleProtocol(max_flips=2))
    yield "fig31", figure_3_1_universe()


def formula_suite(universe):
    processes = sorted(universe.processes)
    first, last = processes[0], processes[-1]
    busy_first = event_count_at_least({first}, 1)
    busy_last = event_count_at_least({last}, 1)
    return [
        TRUE,
        FALSE,
        busy_first,
        Not(busy_first),
        And(busy_first, busy_last),
        Or(busy_first, Not(busy_last)),
        Implies(busy_first, busy_last),
        Iff(busy_first, busy_last),
        Knows(first, busy_last),
        Knows(frozenset(processes), busy_first),
        knows(first, last, busy_first),  # nested knowledge
        Sure(last, busy_first),
        CommonKnowledge(frozenset({first, last}), busy_first),
        CommonKnowledge(frozenset(processes), Or(busy_first, busy_last)),
    ]


@pytest.mark.parametrize(
    "name,universe", list(universes()), ids=lambda value: value if isinstance(value, str) else ""
)
def test_bitset_extensions_match_reference(name, universe):
    fast = KnowledgeEvaluator(universe)
    reference = ReferenceEvaluator(universe)
    for formula in formula_suite(universe):
        assert fast.extension(formula) == reference.extension(formula), (
            name,
            str(formula),
        )


def test_holds_and_validity_match_reference():
    universe = Universe(PingPongProtocol(rounds=2))
    fast = KnowledgeEvaluator(universe)
    reference = ReferenceEvaluator(universe)
    for formula in formula_suite(universe):
        ref_extension = reference.extension(formula)
        assert fast.is_valid(formula) == (len(ref_extension) == len(universe))
        assert fast.is_constant(formula) == (
            len(ref_extension) in (0, len(universe))
        )
        for configuration in universe:
            assert fast.holds(formula, configuration) == (
                configuration in ref_extension
            )


def test_partition_matches_reference():
    universe = Universe(TokenBusProtocol(max_hops=3))
    fast = KnowledgeEvaluator(universe)
    reference = ReferenceEvaluator(universe)
    for process_set in [{p} for p in universe.processes] + [universe.processes]:
        fast_classes = {frozenset(c) for c in fast.partition(process_set)}
        ref_classes = {frozenset(c) for c in reference.partition(process_set)}
        assert fast_classes == ref_classes


def test_counterexamples_fail_the_formula():
    universe = Universe(PingPongProtocol(rounds=2))
    fast = KnowledgeEvaluator(universe)
    processes = sorted(universe.processes)
    formula = Knows(processes[0], event_count_at_least({processes[-1]}, 1))
    extension = fast.extension(formula)
    for counterexample in fast.counterexamples(formula, limit=5):
        assert counterexample not in extension
        assert counterexample in universe
