"""Unit tests for the knowledge formula AST."""

import pytest

from repro.core.errors import FormulaError
from repro.knowledge.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    CommonKnowledge,
    Constant,
    Implies,
    Knows,
    Not,
    Or,
    Sure,
    knows,
    unsure,
)


def b_atom() -> Atom:
    return Atom("b", lambda configuration: True)


class TestConstruction:
    def test_operator_overloads(self):
        b = b_atom()
        assert isinstance(~b, Not)
        assert isinstance(b & b, And)
        assert isinstance(b | b, Or)
        assert isinstance(b >> b, Implies)

    def test_bool_coercion(self):
        b = b_atom()
        assert (b & True).right is TRUE
        assert (b | False).right is FALSE

    def test_invalid_operand_rejected(self):
        with pytest.raises(FormulaError):
            b_atom() & "not a formula"  # type: ignore[operator]

    def test_knows_normalises_processes(self):
        b = b_atom()
        assert Knows("p", b).processes == frozenset({"p"})
        assert Knows(["p", "q"], b).processes == frozenset({"p", "q"})

    def test_knows_builder_nests_left_to_right(self):
        b = b_atom()
        nested = knows("p", "q", b)
        assert isinstance(nested, Knows)
        assert nested.processes == frozenset({"p"})
        inner = nested.operand
        assert isinstance(inner, Knows)
        assert inner.processes == frozenset({"q"})
        assert inner.operand is b

    def test_knows_builder_requires_a_set(self):
        with pytest.raises(FormulaError):
            knows(b_atom())

    def test_unsure_is_negated_sure(self):
        b = b_atom()
        formula = unsure("p", b)
        assert isinstance(formula, Not)
        assert isinstance(formula.operand, Sure)

    def test_sure_expansion(self):
        b = b_atom()
        expansion = Sure("p", b).expand()
        assert isinstance(expansion, Or)
        assert isinstance(expansion.left, Knows)
        assert isinstance(expansion.right.operand, Not)


class TestValueSemantics:
    def test_formulas_are_hashable_values(self):
        b = b_atom()
        assert Knows("p", b) == Knows("p", b)
        assert len({Knows("p", b), Knows("p", b)}) == 1
        assert Knows("p", b) != Knows("q", b)

    def test_atoms_compare_by_name_and_function(self):
        fn = lambda configuration: True  # noqa: E731
        assert Atom("b", fn) == Atom("b", fn)
        assert Atom("b", fn) != Atom("c", fn)

    def test_constants(self):
        assert TRUE == Constant(True)
        assert TRUE != FALSE

    def test_rendering(self):
        b = b_atom()
        assert str(Knows("p", b)) == "K{p}(b)"
        assert str(Sure("p", b)) == "Sure{p}(b)"
        assert str(CommonKnowledge({"p", "q"}, b)) == "C{p,q}(b)"
        assert "∧" in str(b & b)


class TestTraversal:
    def test_subformulas(self):
        b = b_atom()
        assert (b & b).subformulas() == (b, b)
        assert Knows("p", b).subformulas() == (b,)
        assert b.subformulas() == ()
