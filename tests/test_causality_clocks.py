"""Unit tests for logical clocks (Lamport, vector, matrix)."""

from repro.causality.clocks import (
    MatrixClock,
    VectorClock,
    lamport_timestamps,
    vector_timestamps,
    verify_vector_characterisation,
)
from repro.causality.order import CausalOrder
from repro.core.computation import computation_of
from repro.core.events import internal, message_pair
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.protocols.leader_election import ChangRobertsProtocol


def relay():
    pq_s, pq_r = message_pair("p", "q", "m1")
    qr_s, qr_r = message_pair("q", "r", "m2")
    return computation_of(pq_s, pq_r, qr_s, qr_r)


class TestVectorClock:
    def test_zero_components_are_implicit(self):
        assert VectorClock()["p"] == 0
        assert VectorClock({"p": 0}) == VectorClock()

    def test_tick_and_merge(self):
        clock = VectorClock().tick("p").tick("p").tick("q")
        assert clock["p"] == 2 and clock["q"] == 1
        merged = clock.merge(VectorClock({"p": 1, "r": 5}))
        assert merged["p"] == 2 and merged["r"] == 5

    def test_partial_order(self):
        small = VectorClock({"p": 1})
        large = VectorClock({"p": 2, "q": 1})
        assert large.dominates(small)
        assert large.strictly_dominates(small)
        assert not small.dominates(large)
        incomparable = VectorClock({"q": 3})
        assert small.concurrent_with(incomparable)

    def test_hashable_value_object(self):
        assert len({VectorClock({"p": 1}), VectorClock({"p": 1})}) == 1


class TestTimestamps:
    def test_lamport_respects_causality(self):
        z = relay()
        stamps = lamport_timestamps(z)
        order = CausalOrder(z)
        for first in z:
            for second in z:
                if first != second and order.happened_before(first, second):
                    assert stamps[first] < stamps[second]

    def test_vector_characterises_causality_exactly(self):
        assert verify_vector_characterisation(relay())

    def test_vector_characterisation_on_simulated_run(self):
        protocol = ChangRobertsProtocol(tuple(f"n{i}" for i in range(4)))
        trace = simulate(protocol, RandomScheduler(3))
        assert verify_vector_characterisation(trace.computation)

    def test_concurrent_events_get_concurrent_stamps(self):
        a = internal("p", tag="a")
        b = internal("q", tag="b")
        stamps = vector_timestamps(computation_of(a, b))
        assert stamps[a].concurrent_with(stamps[b])


class TestMatrixClock:
    def test_self_view_advances_on_tick(self):
        clock = MatrixClock("p").tick().tick()
        assert clock.view("p")["p"] == 2

    def test_merge_learns_the_senders_view(self):
        p_clock = MatrixClock("p").tick()
        q_clock = MatrixClock("q").tick().merge(p_clock)
        assert q_clock.view("p")["p"] == 1  # q now knows p reached 1
        assert q_clock.view("q")["p"] == 1  # and q's own view absorbed it

    def test_known_floor(self):
        p_clock = MatrixClock("p").tick()
        q_clock = MatrixClock("q").tick().merge(p_clock)
        floor = q_clock.known_floor(["p", "q"])
        assert floor["p"] == 1
        assert floor["q"] == 0  # p has not seen q's tick

    def test_empty_floor(self):
        assert MatrixClock("p").known_floor([]) == VectorClock()
