"""Chandy–Lamport snapshots: completion and cut consistency."""

import pytest

from repro.core.errors import ProtocolError
from repro.protocols.snapshot import (
    SnapshotTokenRingProtocol,
    recorded_snapshot,
    snapshot_is_consistent,
)
from repro.simulation.network import FifoProtocol
from repro.simulation.scheduler import (
    EagerReceiveScheduler,
    LazyReceiveScheduler,
    RandomScheduler,
)
from repro.simulation.simulator import simulate


def run(ring=("p", "q", "r"), max_hops=4, scheduler=None):
    protocol = SnapshotTokenRingProtocol(ring, max_hops=max_hops)
    trace = simulate(FifoProtocol(protocol), scheduler or RandomScheduler(0))
    return protocol, trace


class TestCompletion:
    @pytest.mark.parametrize("seed", range(10))
    def test_snapshot_completes(self, seed):
        protocol, trace = run(scheduler=RandomScheduler(seed))
        assert protocol.snapshot_complete(trace.final_configuration)

    def test_completes_on_larger_rings(self):
        protocol, trace = run(
            ring=("a", "b", "c", "d", "e"), max_hops=8, scheduler=RandomScheduler(3)
        )
        assert protocol.snapshot_complete(trace.final_configuration)

    def test_extremal_schedulers(self):
        for scheduler in (EagerReceiveScheduler(), LazyReceiveScheduler()):
            protocol, trace = run(scheduler=scheduler)
            assert protocol.snapshot_complete(trace.final_configuration)


class TestConsistency:
    @pytest.mark.parametrize("seed", range(10))
    def test_recorded_cut_is_consistent(self, seed):
        protocol, trace = run(scheduler=RandomScheduler(seed))
        assert snapshot_is_consistent(protocol, trace.final_configuration)

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_on_bigger_rings(self, seed):
        protocol, trace = run(
            ring=("a", "b", "c", "d"), max_hops=7, scheduler=RandomScheduler(seed)
        )
        assert snapshot_is_consistent(protocol, trace.final_configuration)

    def test_channel_states_capture_in_flight_tokens(self):
        """Across seeds, at least one snapshot records a non-empty channel
        (the interesting case of the algorithm)."""
        nonempty = 0
        for seed in range(20):
            protocol, trace = run(max_hops=6, scheduler=RandomScheduler(seed))
            snapshot = recorded_snapshot(protocol, trace.final_configuration)
            if snapshot.channel_messages():
                nonempty += 1
        assert nonempty > 0

    def test_snapshot_requires_completion(self):
        protocol = SnapshotTokenRingProtocol(("p", "q", "r"))
        from repro.core.configuration import EMPTY_CONFIGURATION

        with pytest.raises(ProtocolError):
            recorded_snapshot(protocol, EMPTY_CONFIGURATION)


class TestConstruction:
    def test_ring_needs_two(self):
        with pytest.raises(ProtocolError):
            SnapshotTokenRingProtocol(("solo",))

    def test_initiator_must_be_on_ring(self):
        with pytest.raises(ProtocolError):
            SnapshotTokenRingProtocol(("p", "q"), initiator="zebra")

    def test_one_marker_per_process(self):
        protocol, trace = run(scheduler=RandomScheduler(4))
        assert trace.count_messages("marker") == 3
