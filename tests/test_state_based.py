"""State-based isomorphism — the §6 generalisation, executable."""

import pytest

from repro.isomorphism.state_based import (
    StateAbstraction,
    StateKnowledgeEvaluator,
    check_state_knowledge_facts,
    counting_abstraction,
    knowledge_gap,
    length_abstraction,
    state_isomorphic,
)
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows
from repro.knowledge.predicates import has_received
from repro.protocols.toggle import ToggleProtocol, bit_atom
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def toggle():
    protocol = ToggleProtocol(max_flips=2)
    return protocol, Universe(protocol)


class TestRelation:
    def test_identity_abstraction_coincides_with_computations(
        self, pingpong_universe
    ):
        from repro.isomorphism.relation import isomorphic

        abstraction = StateAbstraction()  # identity
        for x in pingpong_universe:
            for y in pingpong_universe:
                assert state_isomorphic(abstraction, x, y, {"p"}) == isomorphic(
                    x, y, {"p"}
                )

    def test_coarser_than_computation_isomorphism(self, pingpong_universe):
        """[P] ⊆ [P]_s for every abstraction."""
        from repro.isomorphism.relation import isomorphic

        abstraction = StateAbstraction(default=length_abstraction())
        for x in pingpong_universe:
            for y in pingpong_universe:
                if isomorphic(x, y, {"q"}):
                    assert state_isomorphic(abstraction, x, y, {"q"})

    def test_lossy_abstraction_merges_classes(self, toggle):
        protocol, universe = toggle
        abstraction = StateAbstraction(default=length_abstraction())
        merged = False
        from repro.isomorphism.relation import isomorphic

        for x in universe:
            for y in universe:
                if state_isomorphic(
                    abstraction, x, y, {protocol.observer}
                ) and not isomorphic(x, y, {protocol.observer}):
                    merged = True
        assert merged

    def test_is_an_equivalence(self, pingpong_universe):
        abstraction = StateAbstraction(default=counting_abstraction())
        configs = list(pingpong_universe)
        for x in configs:
            assert state_isomorphic(abstraction, x, x, {"p"})
        for x in configs:
            for y in configs:
                forward = state_isomorphic(abstraction, x, y, {"p"})
                assert forward == state_isomorphic(abstraction, y, x, {"p"})


class TestStateKnowledge:
    def test_weaker_than_computation_knowledge(self, pingpong_universe):
        b = has_received("q", "ping")
        base = KnowledgeEvaluator(pingpong_universe)
        abstraction = StateAbstraction(default=length_abstraction())
        state_evaluator = StateKnowledgeEvaluator(pingpong_universe, abstraction)
        by_state = state_evaluator.knows_extension({"p"}, b)
        by_computation = base.extension(Knows("p", b))
        assert by_state <= by_computation

    def test_gap_is_nonzero_for_lossy_abstractions(self):
        """A participant's knowledge of the 2PC outcome lives in the
        decision payload; forgetting payloads (length abstraction)
        destroys it — state-knowledge is strictly weaker."""
        from repro.protocols.commit import TwoPhaseCommitProtocol

        protocol = TwoPhaseCommitProtocol(("p1", "p2"))
        universe = Universe(protocol)
        abstraction = StateAbstraction(
            per_process={"p1": length_abstraction()}
        )
        gap = knowledge_gap(
            universe, abstraction, {"p1"}, protocol.all_voted_yes()
        )
        assert gap["impossible"] == 0
        assert gap["forgotten"] > 0

    def test_gap_is_zero_for_identity(self, toggle):
        protocol, universe = toggle
        gap = knowledge_gap(
            universe, StateAbstraction(), {protocol.observer}, bit_atom(protocol)
        )
        assert gap["forgotten"] == 0 and gap["impossible"] == 0

    def test_surviving_facts(self, toggle):
        """The §4.1 facts that only need an equivalence relation hold for
        state-based knowledge — the paper's 'most results apply' claim."""
        protocol, universe = toggle
        for abstraction in (
            StateAbstraction(),
            StateAbstraction(default=counting_abstraction()),
            StateAbstraction(default=length_abstraction()),
        ):
            results = check_state_knowledge_facts(
                universe, abstraction, bit_atom(protocol), {protocol.observer}
            )
            assert all(results.values()), results

    def test_holds_requires_membership(self, pingpong_universe):
        from repro.core.configuration import Configuration
        from repro.core.events import internal

        evaluator = StateKnowledgeEvaluator(pingpong_universe, StateAbstraction())
        foreign = Configuration({"x": (internal("x"),)})
        with pytest.raises(Exception):
            evaluator.holds({"p"}, has_received("q", "ping"), foreign)


class TestAbstractions:
    def test_counting_abstraction_filters_tags(self):
        from repro.core.events import internal

        fn = counting_abstraction("a")
        history = (internal("p", tag="a"), internal("p", tag="b"))
        assert fn(history) == ((("internal", "a"), 1),)

    def test_counting_abstraction_counts_messages(self):
        from repro.core.events import message_pair

        snd, _ = message_pair("p", "q", "m")
        fn = counting_abstraction()
        assert fn((snd,)) == ((("send", "m"), 1),)

    def test_length_abstraction(self):
        from repro.core.events import internal

        fn = length_abstraction()
        assert fn(()) == 0
        assert fn((internal("p"), internal("p", seq=1))) == 2
