"""Hostile-storage hardening: fault shim, typed retry, degradation ladder.

The reliability contract of PR 10: every filesystem call under the
checkpoint and spill tiers routes through the file-ops shim, so the six
storage fault kinds (``enospc``/``eio_read``/``eio_write``/
``fsync_fail``/``slow_io``/``fd_exhaust``) are deterministic and
testable.  Transient errors are absorbed by the typed retry (the run
stays healthy and bit-identical); permanent errors take a *graceful
degradation* rung (checkpointing disabled loudly, spill sealed in RAM)
and the exploration still completes; unclassified errors stay sticky
and re-raise verbatim — robustness must never hide a bug.
"""

import errno
import json
import warnings
import zlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.errors import UniverseError
from repro.universe.arena import ArenaStore, _Chunk
from repro.universe.checkpoint import CheckpointSession, inspect_checkpoint
from repro.universe.explorer import Universe
from repro.universe.faults import (
    CHECKPOINT_FAULT_KINDS,
    STORAGE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    Fault,
    FaultPlan,
)
from repro.universe.fileops import (
    DEFAULT_FILEOPS,
    STORAGE_OP_KINDS,
    FaultInjectingFileOps,
    FileOps,
)
from repro.universe.recovery import RecoveryEvent, RecoveryLog
from repro.universe.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    classify_storage_error,
    is_storage_error,
    retry_io,
    transient_spawn_error,
)

from test_universe_sharded import assert_bit_identical, star_protocol


def no_sleep(_seconds):
    """Backoff stub so retry tests never actually wait."""


class TestFileOpsShim:
    """The fault-injecting shim delivers each kind deterministically."""

    def test_kind_catalogue_matches_fault_plan(self):
        shim_kinds = {k for kinds in STORAGE_OP_KINDS.values() for k in kinds}
        assert shim_kinds == set(STORAGE_FAULT_KINDS)

    def test_arm_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown storage fault"):
            FaultInjectingFileOps().arm("torn_save")

    def test_arm_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultInjectingFileOps().arm("enospc", times=0)

    def test_enospc_fires_on_write(self, tmp_path):
        ops = FaultInjectingFileOps()
        ops.arm("enospc")
        with pytest.raises(OSError) as info:
            ops.write_durable(tmp_path / "x", b"payload")
        assert info.value.errno == errno.ENOSPC
        assert ops.fired == [("enospc", "write")]

    def test_fsync_fail_fires_on_fsync_only(self, tmp_path):
        ops = FaultInjectingFileOps()
        ops.arm("fsync_fail")
        with pytest.raises(OSError) as info:
            ops.write_durable(tmp_path / "x", b"payload")
        assert info.value.errno == errno.EIO
        # The write itself went through; only the fsync was faulted.
        assert ops.fired == [("fsync_fail", "fsync")]

    def test_fd_exhaust_fires_on_write_mode_open_only(self, tmp_path):
        path = tmp_path / "x"
        path.write_bytes(b"existing")
        ops = FaultInjectingFileOps()
        ops.arm("fd_exhaust")
        with ops.open(path, "rb") as handle:  # read opens are never faulted
            assert handle.read() == b"existing"
        with pytest.raises(OSError) as info:
            ops.open(path, "wb")
        assert info.value.errno == errno.EMFILE

    def test_eio_read_fires_on_read_bytes(self, tmp_path):
        path = tmp_path / "x"
        path.write_bytes(b"existing")
        ops = FaultInjectingFileOps()
        ops.arm("eio_read")
        with pytest.raises(OSError) as info:
            ops.read_bytes(path)
        assert info.value.errno == errno.EIO
        assert ops.read_bytes(path) == b"existing"  # fired exactly once

    def test_slow_io_sleeps_instead_of_raising(self, tmp_path):
        ops = FaultInjectingFileOps()
        ops.arm("slow_io", seconds=0.0)
        ops.write_durable(tmp_path / "x", b"payload")
        assert (tmp_path / "x").read_bytes() == b"payload"
        assert ops.fired == [("slow_io", "write")]

    def test_each_fault_fires_at_most_times(self, tmp_path):
        ops = FaultInjectingFileOps()
        ops.arm("eio_write", times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                ops.write_durable(tmp_path / "x", b"payload")
        ops.write_durable(tmp_path / "x", b"payload")  # budget spent
        assert len(ops.fired) == 2

    def test_one_error_fault_per_operation(self, tmp_path):
        """Two armed write faults fire on two *separate* writes."""
        ops = FaultInjectingFileOps()
        ops.arm("enospc")
        ops.arm("eio_write")
        with pytest.raises(OSError) as first:
            ops.write_durable(tmp_path / "x", b"a")
        with pytest.raises(OSError) as second:
            ops.write_durable(tmp_path / "x", b"a")
        assert first.value.errno == errno.ENOSPC
        assert second.value.errno == errno.EIO
        assert ops.armed == ()

    def test_passthrough_write_durable_round_trips(self, tmp_path):
        DEFAULT_FILEOPS.write_durable(tmp_path / "x", b"payload")
        assert DEFAULT_FILEOPS.read_bytes(tmp_path / "x") == b"payload"


class TestTypedRetry:
    """Transient retried with backoff; permanent/unclassified escalate."""

    def test_classification_table(self):
        assert classify_storage_error(OSError(errno.ENOSPC, "x")) == PERMANENT
        assert classify_storage_error(OSError(errno.EROFS, "x")) == PERMANENT
        assert classify_storage_error(OSError(errno.EIO, "x")) == TRANSIENT
        assert classify_storage_error(OSError(errno.EMFILE, "x")) == TRANSIENT
        assert classify_storage_error(OSError(errno.EBADF, "x")) is None
        assert classify_storage_error(ValueError("x")) is None
        assert classify_storage_error(OSError("no errno")) is None

    def test_is_storage_error_covers_both_classes(self):
        assert is_storage_error(OSError(errno.ENOSPC, "x"))
        assert is_storage_error(OSError(errno.EIO, "x"))
        assert not is_storage_error(OSError(errno.EBADF, "x"))
        assert not is_storage_error(RuntimeError("x"))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=8, backoff=0.1, factor=2.0, max_backoff=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(7) == pytest.approx(0.3)

    def test_transient_retries_then_succeeds(self):
        failures = [OSError(errno.EIO, "flaky"), OSError(errno.EINTR, "flaky")]
        retries = []

        def flaky():
            if failures:
                raise failures.pop(0)
            return "done"

        result = retry_io(
            "unit",
            flaky,
            on_retry=lambda *args: retries.append(args),
            sleep=no_sleep,
        )
        assert result == "done"
        assert [attempt for _, attempt, _, _ in retries] == [1, 2]

    def test_transient_exhaustion_reraises_final_error(self):
        def always():
            raise OSError(errno.EIO, "still flaky")

        policy = RetryPolicy(attempts=3, backoff=0.0)
        with pytest.raises(OSError, match="still flaky"):
            retry_io("unit", always, policy=policy, sleep=no_sleep)

    def test_permanent_escalates_immediately(self):
        calls = []

        def full():
            calls.append(1)
            raise OSError(errno.ENOSPC, "disk full")

        with pytest.raises(OSError, match="disk full"):
            retry_io("unit", full, sleep=no_sleep)
        assert len(calls) == 1

    def test_unclassified_escalates_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise OSError(errno.EBADF, "programming error")

        with pytest.raises(OSError, match="programming error"):
            retry_io("unit", bug, sleep=no_sleep)
        assert len(calls) == 1

    def test_spawn_transients_by_errno_and_message(self):
        assert transient_spawn_error(OSError(errno.EAGAIN, "x"))
        assert transient_spawn_error(
            RuntimeError("Resource temporarily unavailable")
        )
        assert not transient_spawn_error(OSError(errno.ENOSPC, "x"))


class TestStorageFaultPlanDelivery:
    def test_storage_faults_need_a_filesystem_target(self):
        with pytest.raises(UniverseError, match="checkpoint path or a spill"):
            Universe(
                star_protocol(4), fault_plan=FaultPlan.parse(["enospc@1"])
            )

    def test_storage_helper_rejects_worker_kinds(self):
        with pytest.raises(UniverseError, match="unknown storage fault"):
            FaultPlan.storage("kill", 1)

    def test_take_storage_faults_delivers_once(self):
        plan = FaultPlan.parse(["enospc@2", "eio_read@0", "kill:0@1"])
        assert plan.has_storage_faults
        taken = plan.take_storage_faults()
        assert sorted(taken) == [("eio_read", 0, 0.0), ("enospc", 2, 0.0)]
        assert plan.take_storage_faults() == []
        assert plan.take_for_shard(0) == [("kill", 1, 0.0)]


class TestCheckpointDegradation:
    """Permanent write failure disables checkpointing loudly; the
    exploration continues and the last committed manifest stays valid."""

    def run_degraded(self, tmp_path, spec="enospc@1"):
        path = tmp_path / "degraded.ckpt"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            universe = Universe(
                star_protocol(5),
                checkpoint=path,
                fault_plan=FaultPlan.parse([spec]),
            )
        loud = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        return universe, path, loud

    def test_enospc_degrades_and_run_completes(self, tmp_path):
        universe, path, loud = self.run_degraded(tmp_path)
        baseline = Universe(star_protocol(5))
        assert_bit_identical(baseline, universe)
        assert universe.checkpoint_degraded
        session = universe._checkpoint_session
        assert "injected enospc" in session.degraded_reason
        assert len(loud) == 1  # exactly one warning, not one per save
        events = [e for e in universe.recovery_log if e.kind == "checkpoint_degraded"]
        assert len(events) == 1
        assert events[0].rung == "disable-checkpointing"
        assert events[0]["action"] == "disable-checkpointing"

    def test_degraded_manifest_verifies_clean(self, tmp_path):
        universe, path, _ = self.run_degraded(tmp_path)
        report = inspect_checkpoint(path)
        assert report["valid"], report
        # The committed prefix resumes and completes bit-identically.
        resumed = Universe(star_protocol(5), checkpoint=path)
        assert_bit_identical(universe, resumed)
        assert not resumed.checkpoint_degraded

    def test_transient_eio_write_is_absorbed(self, tmp_path):
        path = tmp_path / "flaky.ckpt"
        universe = Universe(
            star_protocol(5),
            checkpoint=path,
            fault_plan=FaultPlan.parse(["eio_write@1"]),
        )
        assert not universe.checkpoint_degraded
        retries = [e for e in universe.recovery_log if e.kind == "storage_retry"]
        assert retries and retries[0].rung == "retry"
        assert inspect_checkpoint(path)["valid"]
        assert_bit_identical(Universe(star_protocol(5)), universe)

    def test_transient_fsync_fail_is_absorbed(self, tmp_path):
        path = tmp_path / "fsync.ckpt"
        universe = Universe(
            star_protocol(5),
            checkpoint=path,
            fault_plan=FaultPlan.parse(["fsync_fail@1"]),
        )
        assert not universe.checkpoint_degraded
        assert any(e.kind == "storage_retry" for e in universe.recovery_log)
        assert inspect_checkpoint(path)["valid"]

    def test_eio_read_on_resume_is_retried(self, tmp_path):
        path = tmp_path / "resume.ckpt"
        Universe(
            star_protocol(5),
            max_configurations=200,
            on_limit="truncate",
            checkpoint=path,
        )
        resumed = Universe(
            star_protocol(5),
            checkpoint=path,
            fault_plan=FaultPlan.parse(["eio_read@0"]),
        )
        assert any(e.kind == "storage_retry" for e in resumed.recovery_log)
        assert_bit_identical(Universe(star_protocol(5)), resumed)

    def test_sharded_run_degrades_gracefully_too(self, tmp_path):
        path = tmp_path / "sharded.ckpt"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            universe = Universe(
                star_protocol(5),
                workers=2,
                checkpoint=path,
                fault_plan=FaultPlan.parse(["enospc@2"]),
            )
        assert universe.checkpoint_degraded
        assert_bit_identical(Universe(star_protocol(5)), universe)
        assert inspect_checkpoint(path)["valid"]


class _ExplodingFileOps(FileOps):
    """Raises a fixed error on every write — a stand-in for a bug."""

    def __init__(self, error: BaseException) -> None:
        self.error = error
        self.writes = 0

    def write(self, handle, data) -> int:
        self.writes += 1
        raise self.error


class TestWriterStickyError:
    """Unclassified failures are never absorbed: the session is dead and
    every later save/flush re-raises the original error verbatim."""

    def make_session(self, tmp_path, error):
        universe = Universe(star_protocol(4))
        session = CheckpointSession(
            tmp_path / "sticky.ckpt",
            star_protocol(4),
            None,
            fileops=_ExplodingFileOps(error),
        )
        return universe, session

    def test_unclassified_oserror_reraises_verbatim(self, tmp_path):
        error = OSError(errno.EBADF, "not a storage problem")
        universe, session = self.make_session(tmp_path, error)
        session.save(len(universe), universe)
        with pytest.raises(OSError) as info:
            session.flush()
        assert info.value is error  # the exact object, not a rewrap
        assert not session.degraded
        # Sticky: the next save refuses too, with the same error.
        with pytest.raises(OSError) as again:
            session.save(len(universe), universe)
        assert again.value is error

    def test_flush_never_deadlocks_after_degradation(self, tmp_path):
        universe = Universe(star_protocol(4))
        ops = FaultInjectingFileOps()
        log = RecoveryLog()
        session = CheckpointSession(
            tmp_path / "deg.ckpt",
            star_protocol(4),
            None,
            fileops=ops,
            recovery_log=log,
        )
        ops.arm("enospc")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.save(len(universe), universe)
            session.flush()  # returns promptly instead of waiting forever
        assert session.degraded
        session.save(len(universe), universe)  # no-op, no exception
        session.flush()
        assert [e.kind for e in log] == ["checkpoint_degraded"]

    def test_queue_ordered_arming_declines_when_unorderable(self, tmp_path):
        session = CheckpointSession(
            tmp_path / "fg.ckpt", star_protocol(4), None, background=False
        )
        # Foreground writes are already ordered — the caller arms directly.
        assert not session.arm_storage_faults([("enospc", 0.0)])
        mono = CheckpointSession(
            tmp_path / "mono.ckpt", star_protocol(4), None, format="monolithic"
        )
        assert not mono.arm_storage_faults([("enospc", 0.0)])


class TestArenaSpillLadder:
    """Spill failure seals the cold tier in RAM; exploration continues."""

    def make_store(self, tmp_path):
        ops = FaultInjectingFileOps()
        log = RecoveryLog()
        store = ArenaStore(
            spill_dir=str(tmp_path), fileops=ops, recovery_log=log
        )
        return store, ops, log

    def chunk(self, payload=b"cold-layer-data" * 64):
        return _Chunk(zlib.compress(payload, 1))

    def test_transient_write_retries_then_spills(self, tmp_path):
        store, ops, log = self.make_store(tmp_path)
        ops.arm("eio_write")
        chunk = self.chunk()
        freed = store._spill_chunk(chunk)
        assert freed == chunk.length
        assert chunk.state == "spilled" and chunk.blob is None
        assert not store.spill_disabled
        assert [e.kind for e in log] == ["storage_retry"]

    def test_permanent_failure_seals_in_ram(self, tmp_path):
        store, ops, log = self.make_store(tmp_path)
        ops.arm("enospc", times=10)
        chunk = self.chunk()
        with pytest.warns(RuntimeWarning, match="sealed in RAM"):
            assert store._spill_chunk(chunk) == 0
        assert store.spill_disabled
        assert chunk.state == "zlib" and chunk.blob is not None
        events = [e for e in log if e.kind == "spill_degraded"]
        assert len(events) == 1 and events[0].rung == "sealed-in-ram"
        # Further spill sweeps are a silent no-op on the spill tier.
        assert store.stats()["spill_disabled"]
        store.spill_cold()
        assert chunk.state == "zlib"

    def test_retry_exhaustion_on_transients_also_seals(self, tmp_path):
        store, ops, log = self.make_store(tmp_path)
        ops.arm("eio_write", times=16)  # outlasts the retry budget
        with pytest.warns(RuntimeWarning, match="spill disabled"):
            assert store._spill_chunk(self.chunk()) == 0
        assert store.spill_disabled
        kinds = [e.kind for e in log]
        assert kinds.count("storage_retry") >= 1
        assert kinds[-1] == "spill_degraded"

    def test_unclassified_error_propagates(self, tmp_path):
        error = OSError(errno.EBADF, "not environmental")
        store = ArenaStore(
            spill_dir=str(tmp_path), fileops=_ExplodingFileOps(error)
        )
        with pytest.raises(OSError) as info:
            store._spill_chunk(self.chunk())
        assert info.value is error
        assert not store.spill_disabled

    def test_spill_read_retries_transient_eio(self, tmp_path):
        store, ops, log = self.make_store(tmp_path)
        payload = b"round-trip" * 100
        chunk = self.chunk(payload)
        store._spill_chunk(chunk)
        ops.arm("eio_read")
        raw = store._read_spill(chunk.offset, chunk.length)
        assert zlib.decompress(raw) == payload
        assert any(e.kind == "storage_retry" for e in log)


class TestOrphanSpillCleanup:
    def test_resume_deletes_and_logs_orphans(self, tmp_path):
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        orphan = spill_dir / "arena-orphan0.spill"
        orphan.write_bytes(b"stale bytes from a dead process")
        unrelated = spill_dir / "keep.txt"
        unrelated.write_bytes(b"not ours")
        path = tmp_path / "arena.ckpt"
        universe = Universe(
            star_protocol(4),
            checkpoint=path,
            store="arena",
            spill_dir=spill_dir,
        )
        assert not orphan.exists()
        assert unrelated.exists()
        events = [e for e in universe.recovery_log if e.kind == "orphan_spill"]
        assert len(events) == 1
        assert events[0].rung == "discard-orphan"
        assert "arena-orphan0.spill" in events[0].detail


class TestRecoveryEventCompat:
    """The frozen dataclass keeps the pre-PR 10 dict surface alive."""

    def test_dict_compatibility(self):
        event = RecoveryEvent("worker", "respawn", layer=3, shard=1)
        assert event["kind"] == "worker"
        assert event["action"] == "respawn"  # historical alias of rung
        assert event.action == "respawn"
        assert event.get("shard") == 1
        assert event.get("missing", "fallback") == "fallback"
        with pytest.raises(KeyError):
            event["missing"]
        assert "action" in event.keys() and "rung" in event.keys()
        assert event.as_dict()["seq"] == 0

    def test_log_sequencing_and_legacy_append(self):
        log = RecoveryLog()
        log.record("worker", "respawn", shard=0)
        log.append({"kind": "worker", "action": "fold", "shard": 1})
        log.append(RecoveryEvent("rss_budget", "truncate", seq=99))
        assert [e.seq for e in log] == [0, 1, 2]  # seq reassigned on append
        assert [e.rung for e in log] == ["respawn", "fold", "truncate"]
        assert len(log) == 3 and bool(log)

    def test_events_are_frozen(self):
        event = RecoveryEvent("worker", "respawn")
        with pytest.raises(AttributeError):
            event.rung = "fold"


# -- hypothesis: the CLI fault grammar round-trips exactly --------------

SHARDLESS_KINDS = CHECKPOINT_FAULT_KINDS + STORAGE_FAULT_KINDS

fault_seconds = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=0.001,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)


@st.composite
def faults(draw) -> Fault:
    kind = draw(st.sampled_from(WORKER_FAULT_KINDS + SHARDLESS_KINDS))
    shard = -1 if kind in SHARDLESS_KINDS else draw(
        st.integers(min_value=0, max_value=7)
    )
    layer = draw(st.integers(min_value=0, max_value=50))
    return Fault(kind, shard, layer, seconds=draw(fault_seconds))


class TestFaultGrammarRoundTrip:
    @given(fault=faults())
    @settings(max_examples=120, deadline=None)
    def test_spec_parse_round_trips(self, fault):
        """``Fault.spec()`` is the exact inverse of ``FaultPlan.parse``."""
        plan = FaultPlan.parse([fault.spec()])
        assert plan.faults == (fault,)

    @given(faults_list=st.lists(faults(), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_plans_round_trip_in_order(self, faults_list):
        plan = FaultPlan.parse([fault.spec() for fault in faults_list])
        assert plan.faults == tuple(faults_list)

    @given(
        kind=st.sampled_from(SHARDLESS_KINDS),
        shard=st.integers(min_value=0, max_value=7),
        layer=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_shard_qualified_shardless_kinds_rejected(self, kind, shard, layer):
        with pytest.raises(UniverseError, match="takes no shard"):
            FaultPlan.parse([f"{kind}:{shard}@{layer}"])

    @given(
        kind=st.sampled_from(WORKER_FAULT_KINDS),
        layer=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_worker_kinds_require_a_shard(self, kind, layer):
        with pytest.raises(UniverseError, match="needs a shard"):
            FaultPlan.parse([f"{kind}@{layer}"])

    @given(fault=faults())
    @settings(max_examples=60, deadline=None)
    def test_json_report_spelling_is_stable(self, fault):
        """Specs survive a JSON round trip (the --json report embeds
        them as plain strings)."""
        assert json.loads(json.dumps(fault.spec())) == fault.spec()
