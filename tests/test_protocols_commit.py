"""Two-phase commit: knowledge preconditions for action."""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import CommonKnowledge, Implies, Knows, Sure
from repro.protocols.commit import TwoPhaseCommitProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def commit_setup():
    protocol = TwoPhaseCommitProtocol(("p1", "p2"))
    universe = Universe(protocol)
    evaluator = KnowledgeEvaluator(universe)
    return protocol, universe, evaluator


class TestProtocolBehaviour:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            TwoPhaseCommitProtocol(("a",), coordinator="a")
        with pytest.raises(ValueError):
            TwoPhaseCommitProtocol(())

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement(self, seed):
        """All participants apply the same decision."""
        protocol = TwoPhaseCommitProtocol(("p1", "p2", "p3"))
        trace = simulate(protocol, RandomScheduler(seed))
        final = trace.final_configuration
        decisions = {
            protocol.applied(final.history(participant))
            for participant in protocol.participants
        }
        assert len(decisions) == 1
        assert decisions != {None}

    @pytest.mark.parametrize("seed", range(6))
    def test_commit_iff_unanimous(self, seed):
        protocol = TwoPhaseCommitProtocol(("p1", "p2", "p3"))
        trace = simulate(protocol, RandomScheduler(seed + 50))
        final = trace.final_configuration
        votes = [
            protocol.vote_of(final.history(participant))
            for participant in protocol.participants
        ]
        applied = protocol.applied(final.history(protocol.participants[0]))
        assert applied == all(votes)

    def test_universe_is_finite_and_complete(self, commit_setup):
        _, universe, _ = commit_setup
        assert universe.is_complete
        assert len(universe) > 0


class TestKnowledgePreconditions:
    def test_commit_requires_knowing_unanimity(self, commit_setup):
        """The headline knowledge precondition: a participant that has
        committed *knows* every participant voted yes."""
        protocol, _, evaluator = commit_setup
        unanimous = protocol.all_voted_yes()
        for participant in protocol.participants:
            committed = protocol.committed_atom(participant)
            assert evaluator.is_valid(
                Implies(committed, Knows(participant, unanimous))
            )

    def test_no_knowledge_of_peer_votes_before_decision(self, commit_setup):
        """Before receiving the coordinator's decision, p1 is never sure
        of p2's vote — votes travel through the coordinator only."""
        protocol, universe, evaluator = commit_setup
        p2_yes = protocol.voted_atom("p2", True)
        sure = evaluator.extension(Sure("p1", p2_yes))
        for configuration in universe:
            if protocol.decision_received(configuration.history("p1")) is None:
                assert configuration not in sure

    def test_coordinator_knows_votes_it_received(self, commit_setup):
        protocol, universe, evaluator = commit_setup
        p1_yes = protocol.voted_atom("p1", True)
        knows = evaluator.extension(Knows(protocol.coordinator, p1_yes))
        for configuration in universe:
            votes = protocol.votes_received(
                configuration.history(protocol.coordinator)
            )
            if votes.get("p1") is True:
                assert configuration in knows

    def test_outcome_never_common_knowledge(self, commit_setup):
        """The knowledge-theoretic root of 2PC's blocking behaviour: the
        unanimous outcome never becomes common knowledge among the
        participants."""
        protocol, _, evaluator = commit_setup
        ck = CommonKnowledge(set(protocol.participants), protocol.all_voted_yes())
        assert len(evaluator.extension(ck)) == 0

    def test_commit_knowledge_is_nested_through_coordinator(self, commit_setup):
        """When p1 commits it also knows the coordinator knew unanimity —
        the chain <p2 coord p1> at the knowledge level."""
        protocol, _, evaluator = commit_setup
        unanimous = protocol.all_voted_yes()
        committed = protocol.committed_atom("p1")
        nested = Knows("p1", Knows(protocol.coordinator, unanimous))
        assert evaluator.is_valid(Implies(committed, nested))

    def test_knowledge_gain_requires_chain_from_peers(self, commit_setup):
        """Theorem 5 applied to 2PC: p1 gaining knowledge of 'p2 voted
        yes' requires a process chain <p2 p1> in the suffix."""
        from repro.knowledge.transfer import check_theorem_5_gain

        protocol, _, evaluator = commit_setup
        p2_yes = protocol.voted_atom("p2", True)
        report = check_theorem_5_gain(
            evaluator, [frozenset({"p1"})], p2_yes, check_receive=False
        )
        assert report.holds and report.checked > 0
