"""Unit tests for process chains (§3.1) and the suffix form."""

import pytest

from repro.causality.chains import (
    chain_in_suffix,
    find_process_chain,
    has_process_chain,
    has_process_chain_naive,
)
from repro.core.computation import computation_of
from repro.core.configuration import Configuration
from repro.core.events import internal, message_pair


def relay():
    """p -> q -> r message relay."""
    pq_s, pq_r = message_pair("p", "q", "m1")
    qr_s, qr_r = message_pair("q", "r", "m2")
    z = computation_of(pq_s, pq_r, qr_s, qr_r)
    return z


class TestChains:
    def test_single_set_chain_is_event_presence(self):
        z = relay()
        assert has_process_chain(z, ["p"])
        assert not has_process_chain(z, ["x"])

    def test_relay_has_p_q_r_chain(self):
        z = relay()
        assert has_process_chain(z, ["p", "q", "r"])

    def test_no_backward_chain(self):
        z = relay()
        assert not has_process_chain(z, ["r", "q", "p"])
        assert not has_process_chain(z, ["r", "p"])

    def test_repeated_station_allowed(self):
        """Observation 1: P may be replaced by P P (reflexivity of ->)."""
        z = relay()
        assert has_process_chain(z, ["p", "p", "q", "q", "r", "r"])

    def test_process_sets_in_chain(self):
        z = relay()
        assert has_process_chain(z, [{"p", "x"}, {"q"}, {"r", "y"}])

    def test_concurrent_events_make_no_chain(self):
        a = internal("p", tag="a")
        b = internal("q", tag="b")
        z = computation_of(a, b)
        assert not has_process_chain(z, ["p", "q"])
        assert has_process_chain(z, ["p"])
        assert has_process_chain(z, ["q"])

    def test_empty_chain_spec_rejected(self):
        with pytest.raises(ValueError):
            has_process_chain(relay(), [])


class TestWitnesses:
    def test_witness_is_a_causal_chain(self):
        z = relay()
        witness = find_process_chain(z, ["p", "q", "r"])
        assert witness is not None
        assert [event.process for event in witness] == ["p", "q", "r"]

    def test_witness_none_when_no_chain(self):
        z = relay()
        assert find_process_chain(z, ["r", "p"]) is None


class TestNaiveAgreement:
    def test_naive_and_layered_agree(self):
        z = relay()
        specs = [
            ["p"],
            ["q"],
            ["p", "q"],
            ["q", "p"],
            ["p", "q", "r"],
            ["r", "q", "p"],
            ["p", "r"],
            [{"p", "q"}, {"r"}],
        ]
        for spec in specs:
            assert has_process_chain(z, spec) == has_process_chain_naive(z, spec)

    def test_agreement_over_universe(self, broadcast_universe):
        specs = [["a", "b"], ["b", "a"], ["a", "b", "c"], ["c", "a"]]
        for configuration in broadcast_universe:
            for spec in specs:
                assert has_process_chain(configuration, spec) == (
                    has_process_chain_naive(configuration, spec)
                )


class TestSuffixChains:
    def test_chain_in_computation_suffix(self):
        z = relay()
        x = computation_of(*z.events[:2])  # after p->q delivered
        assert chain_in_suffix(z, x, ["q", "r"]) is not None
        assert chain_in_suffix(z, x, ["p", "q"]) is None  # p has no suffix event

    def test_chain_in_configuration_suffix(self):
        z = relay()
        whole = Configuration.from_computation(z)
        prefix = Configuration.from_computation(computation_of(*z.events[:2]))
        assert chain_in_suffix(whole, prefix, ["q", "r"]) is not None

    def test_mixed_types_rejected(self):
        z = relay()
        with pytest.raises(TypeError):
            chain_in_suffix(z, Configuration.from_computation(z), ["p"])

    def test_send_in_prefix_receive_in_suffix_is_no_message_edge(self):
        """A message crossing the cut contributes no chain inside the
        suffix (its send is not a suffix event)."""
        snd, rcv = message_pair("p", "q", "m")
        later = internal("q", tag="later")
        z = computation_of(snd, rcv, later)
        x = computation_of(snd)
        assert chain_in_suffix(z, x, ["p", "q"]) is None
        assert chain_in_suffix(z, x, ["q"]) is not None
