"""The bench harness smoke mode (``repro bench --quick --check``).

Tier-1 coverage so the benchmark harness cannot silently rot: the quick
subset must run end to end, the cross-checks must pass against the
reference oracles, and a rigged oracle disagreement must be caught.
"""

import json

import pytest

from repro.bench import (
    BenchCheckFailure,
    main,
    run_benchmarks,
    run_cross_checks,
    write_trajectory,
)


class TestQuickCheckSmoke:
    def test_cli_quick_check_exits_zero(self, capsys):
        assert main(["--quick", "--check", "--no-write"]) == 0
        out = capsys.readouterr().out
        assert "cross-checked vs reference oracles" in out
        assert "iso_properties_star_n3" in out

    def test_quick_document_shape(self):
        document = run_benchmarks(repeats=3, quick=True, check=True)
        assert document["mode"] == "quick"
        assert document["repeats"] == 1  # quick forces single repeats
        assert set(document["cross_checked"]) == {
            "pingpong",
            "star_broadcast_n3",
            "token_bus_h4",
            "star_broadcast_n4_truncated",
        }
        benchmarks = document["benchmarks"]
        paired = benchmarks["iso_properties_star_n3"]
        assert paired["object_seconds"] > 0
        assert paired["speedup_vs_object"] > 0
        assert json.loads(json.dumps(document)) == document  # JSON-ready

    def test_trajectory_write(self, tmp_path):
        document = run_benchmarks(repeats=1, quick=True)
        path = write_trajectory(document, tmp_path)
        assert path.exists() and path.name.startswith("BENCH_")
        assert json.loads(path.read_text())["mode"] == "quick"

    def test_cross_checks_cover_truncated_universe(self):
        assert "star_broadcast_n4_truncated" in run_cross_checks()

    def test_check_failure_is_reported(self, monkeypatch, capsys):
        from repro import bench

        def broken(universe, x, sets):
            return frozenset()

        monkeypatch.setattr(
            bench.reference, "composed_class_reference", broken
        )
        with pytest.raises(BenchCheckFailure):
            run_cross_checks()
        assert main(["--quick", "--check", "--no-write"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            run_benchmarks(repeats=0)
        with pytest.raises(SystemExit):
            main(["--quick", "--no-write", "--repeats", "0"])


class TestExplorationScaleSmoke:
    """The exploration-scale suite's quick mode is tier-1: the scale
    harness (compiled-table cold split, streaming truncation, budget
    guard) must not rot between full-size runs."""

    def test_quick_suite_exits_zero(self, capsys):
        assert main(
            [
                "--suite",
                "exploration-scale",
                "--quick",
                "--no-write",
                "--budget",
                "600",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "universe_star_broadcast_n5" in out
        assert "universe_tree_broadcast_d2" in out
        assert "universe_star_broadcast_n5_truncated" in out

    def test_quick_suite_document_shape(self):
        document = run_benchmarks(
            repeats=1, quick=True, suite="exploration-scale", budget=600
        )
        assert document["suite"] == "exploration-scale"
        assert document["budget_seconds"] == 600
        benchmarks = document["benchmarks"]
        star = benchmarks["universe_star_broadcast_n5"]
        # Cold-start attribution: table build reported separately from BFS.
        assert star["table_build_seconds"] >= 0
        assert (
            abs(
                star["first_seconds"]
                - star["table_build_seconds"]
                - star["bfs_first_seconds"]
            )
            < 1e-6
        )
        truncated = benchmarks["universe_star_broadcast_n5_truncated"]
        assert truncated["complete"] is False
        assert truncated["configurations"] == truncated["max_configurations"]
        import json

        assert json.loads(json.dumps(document)) == document

    def test_budget_overrun_fails(self, capsys):
        from repro.bench import BenchBudgetExceeded

        with pytest.raises(BenchBudgetExceeded):
            run_benchmarks(
                repeats=1, quick=True, suite="exploration-scale", budget=1e-9
            )
        assert (
            main(
                [
                    "--suite",
                    "exploration-scale",
                    "--quick",
                    "--no-write",
                    "--budget",
                    "0.000000001",
                ]
            )
            == 1
        )
        assert "budget" in capsys.readouterr().out

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(repeats=1, suite="nope")

    def test_trajectory_files_never_clobber(self, tmp_path):
        document = run_benchmarks(repeats=1, quick=True)
        first = write_trajectory(document, tmp_path)
        second = write_trajectory(document, tmp_path)
        assert first != second
        assert first.exists() and second.exists()
        assert second.name.endswith("-2.json")
