"""Failure monitors: async impossibility substrate, sync timeouts."""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows, Not, Sure
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def async_universe():
    return Universe(AsyncFailureMonitorProtocol(heartbeats=2))


@pytest.fixture(scope="module")
def sync_universe():
    return Universe(SyncFailureMonitorProtocol(rounds=2))


class TestAsyncProtocol:
    def test_crashed_worker_stops(self, async_universe):
        protocol = async_universe.protocol
        for configuration in async_universe:
            history = configuration.history(protocol.worker)
            crash_indices = [
                index
                for index, event in enumerate(history)
                if getattr(event, "tag", None) == "crash"
            ]
            if crash_indices:
                assert crash_indices[0] == len(history) - 1

    def test_crash_is_local_to_worker(self, async_universe):
        from repro.knowledge.predicates import is_local_to

        protocol = async_universe.protocol
        evaluator = KnowledgeEvaluator(async_universe)
        assert is_local_to(evaluator, protocol.crashed_atom(), {protocol.worker})

    def test_monitor_never_sure(self, async_universe):
        protocol = async_universe.protocol
        evaluator = KnowledgeEvaluator(async_universe)
        crashed = protocol.crashed_atom()
        assert evaluator.is_valid(Not(Sure(protocol.monitor, crashed)))

    def test_monitor_never_knows_liveness_either(self, async_universe):
        protocol = async_universe.protocol
        evaluator = KnowledgeEvaluator(async_universe)
        crashed = protocol.crashed_atom()
        assert not evaluator.is_valid(Knows(protocol.monitor, Not(crashed)))


class TestSyncProtocol:
    def test_ticks_wait_for_heartbeats_or_crash(self, sync_universe):
        """The synchrony restriction: tick r exists only when heartbeat r
        was sent or the worker crashed first."""
        protocol = sync_universe.protocol
        for configuration in sync_universe:
            ticks = [
                event
                for event in configuration.history(protocol.timer)
                if event.is_send
            ]
            heartbeats_sent = sum(
                1
                for event in configuration.history(protocol.worker)
                if event.is_send
            )
            crashed = protocol.crashed(configuration.history(protocol.worker))
            for tick in ticks:
                round_index = tick.message.payload
                assert heartbeats_sent > round_index or crashed

    def test_detection_happens(self, sync_universe):
        protocol = sync_universe.protocol
        evaluator = KnowledgeEvaluator(sync_universe)
        crashed = protocol.crashed_atom()
        detections = evaluator.extension(Knows(protocol.monitor, crashed))
        assert len(detections) > 0

    def test_detection_is_by_timeout(self, sync_universe):
        """In every configuration where the monitor knows the crash, it
        has received a tick whose heartbeat never arrived."""
        protocol = sync_universe.protocol
        evaluator = KnowledgeEvaluator(sync_universe)
        crashed = protocol.crashed_atom()
        for configuration in evaluator.extension(
            Knows(protocol.monitor, crashed)
        ):
            monitor_history = configuration.history(protocol.monitor)
            ticks = [
                event.message.payload
                for event in monitor_history
                if event.is_receive and event.message.tag == "tick"
            ]
            heartbeats = sum(
                1
                for event in monitor_history
                if event.is_receive and event.message.tag == "heartbeat"
            )
            assert ticks, "knowledge without any tick received"
            assert max(ticks) >= heartbeats  # some round timed out

    def test_sync_universe_is_smaller_than_free_product(self, sync_universe):
        """The synchrony assumption removes computations (that is the whole
        point): relaxing the restriction must enlarge the universe."""
        protocol = sync_universe.protocol

        class Unrestricted(SyncFailureMonitorProtocol):
            def filter_enabled_events(self, configuration, events):
                # Base Protocol enabling, without the synchrony filter.
                return events

        free = Universe(
            Unrestricted(
                worker=protocol.worker,
                monitor=protocol.monitor,
                timer=protocol.timer,
                rounds=protocol.rounds,
            )
        )
        assert len(sync_universe) < len(free)
