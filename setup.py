"""Setuptools shim for legacy editable installs.

All packaging metadata lives in ``pyproject.toml`` (the source of
truth); this file exists only so offline environments without PEP 660
support can still run ``pip install -e .`` through the legacy path.
"""

from setuptools import setup

setup()
