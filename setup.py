"""Setuptools shim for legacy editable installs (offline environments
without the ``wheel`` package)."""

from setuptools import setup

setup()
